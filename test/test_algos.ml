(* Tests for the algorithm layer: MST, connectivity, min-cut, SSSP, and
   their sequential references. *)

open Core

let check = Alcotest.check
let case = Alcotest.test_case

let random_connected_graph seed ~n ~extra =
  let rng = Rng.create seed in
  let b = Builder.create ~n in
  for v = 1 to n - 1 do
    Builder.add_edge b (Rng.int rng v) v
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra && !attempts < 20 * extra do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Builder.mem_edge b u v) then begin
      Builder.add_edge b u v;
      incr added
    end
  done;
  Builder.graph b

(* --- Kruskal ------------------------------------------------------------ *)

let kruskal_path () =
  let g = Generators.path 5 in
  let w = Weights.uniform g 1 in
  check (Alcotest.list Alcotest.int) "tree edges" [ 0; 1; 2; 3 ] (Kruskal.mst w);
  check Alcotest.int "weight" 4 (Kruskal.total_weight w)

let kruskal_cycle_drops_heaviest () =
  let g = Generators.cycle 4 in
  let w = Weights.create g (fun e -> e + 1) in
  (* Edge 3 (weight 4) is the heaviest on the unique cycle. *)
  check (Alcotest.list Alcotest.int) "drops heaviest" [ 0; 1; 2 ] (Kruskal.mst w)

(* --- Stoer-Wagner --------------------------------------------------------- *)

let stoer_wagner_known_cuts () =
  check Alcotest.int "path" 1 (Stoer_wagner.min_cut (Generators.path 6));
  check Alcotest.int "cycle" 2 (Stoer_wagner.min_cut (Generators.cycle 9));
  check Alcotest.int "K5" 4 (Stoer_wagner.min_cut (Generators.complete 5));
  check Alcotest.int "star" 1 (Stoer_wagner.min_cut (Generators.star 7));
  check Alcotest.int "grid" 2 (Stoer_wagner.min_cut (Generators.grid ~rows:4 ~cols:5));
  check Alcotest.int "torus" 4 (Stoer_wagner.min_cut (Generators.torus ~rows:4 ~cols:5))

let stoer_wagner_bridge () =
  (* Two triangles joined by one bridge edge. *)
  let g =
    Graph.create ~n:6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (2, 3) ]
  in
  let value, side = Stoer_wagner.min_cut_with_side g in
  check Alcotest.int "bridge cut" 1 value;
  check Alcotest.bool "side is one triangle" true
    (List.sort compare side = [ 0; 1; 2 ] || List.sort compare side = [ 3; 4; 5 ])

let stoer_wagner_weighted () =
  let g = Generators.cycle 4 in
  let w = Weights.create g (fun e -> if e = 0 then 10 else 1) in
  (* The cheapest cut severs two weight-1 edges: value 2. *)
  check Alcotest.int "weighted" 2 (Stoer_wagner.min_cut ~weights:w g)

(* --- MST ------------------------------------------------------------------ *)

let mst_matches_kruskal =
  QCheck.Test.make ~name:"Boruvka(thm31) = Kruskal" ~count:15
    QCheck.(pair (int_bound 1000) (int_range 4 40))
    (fun (seed, n) ->
      let g = random_connected_graph seed ~n ~extra:(n / 2) in
      let w = Weights.random_distinct (Rng.create (seed + 1)) g in
      let result = Mst.boruvka ~seed:(seed + 2) w in
      result.Mst.edges = Kruskal.mst w)

let mst_baseline_mode_matches =
  QCheck.Test.make ~name:"Boruvka(baseline) = Kruskal" ~count:10
    QCheck.(pair (int_bound 1000) (int_range 4 30))
    (fun (seed, n) ->
      let g = random_connected_graph seed ~n ~extra:(n / 2) in
      let w = Weights.random_distinct (Rng.create (seed + 1)) g in
      let result = Mst.boruvka ~seed:(seed + 2) ~mode:Boruvka_engine.Bfs_baseline w in
      result.Mst.edges = Kruskal.mst w)

let mst_induced_mode_matches =
  QCheck.Test.make ~name:"Boruvka(induced-only) = Kruskal" ~count:10
    QCheck.(pair (int_bound 1000) (int_range 4 30))
    (fun (seed, n) ->
      let g = random_connected_graph seed ~n ~extra:(n / 2) in
      let w = Weights.random_distinct (Rng.create (seed + 1)) g in
      let result = Mst.boruvka ~seed:(seed + 2) ~mode:Boruvka_engine.Induced_only w in
      result.Mst.edges = Kruskal.mst w)

let mst_grid_phases () =
  let g = Generators.grid ~rows:8 ~cols:8 in
  let w = Weights.random_distinct (Rng.create 3) g in
  let result = Mst.boruvka w in
  check Alcotest.int "spanning tree size" 63 (List.length result.Mst.edges);
  check Alcotest.bool "log phases" true
    (result.Mst.accounting.Boruvka_engine.phases <= 9);
  check Alcotest.bool "rounds measured" true
    (result.Mst.accounting.Boruvka_engine.pa_rounds > 0)

(* --- Connectivity ------------------------------------------------------------ *)

let connectivity_matches_components =
  QCheck.Test.make ~name:"PA connectivity = sequential components" ~count:12
    QCheck.(triple (int_bound 1000) (int_range 4 30) (int_range 0 100))
    (fun (seed, n, keep_pct) ->
      let g = random_connected_graph seed ~n ~extra:(n / 2) in
      let rng = Rng.create (seed + 5) in
      let kept = Array.init (Graph.m g) (fun _ -> Rng.int rng 100 < keep_pct) in
      let r = Connectivity.components ~seed:(seed + 6) g ~keep:(fun e -> kept.(e)) in
      let sequential =
        let uf = Union_find.create (Graph.n g) in
        Graph.iter_edges g (fun e u v -> if kept.(e) then ignore (Union_find.union uf u v));
        Union_find.count uf
      in
      r.Connectivity.components = sequential)

let connectivity_full_graph () =
  let g = Generators.grid ~rows:5 ~cols:5 in
  let r = Connectivity.components g ~keep:(fun _ -> true) in
  check Alcotest.int "one component" 1 r.Connectivity.components;
  let r0 = Connectivity.components g ~keep:(fun _ -> false) in
  check Alcotest.int "all singletons" 25 r0.Connectivity.components

(* --- Min-cut -------------------------------------------------------------- *)

let mincut_degree_bound () =
  check Alcotest.int "cycle degree bound" 2
    (Mincut.degree_upper_bound (Generators.cycle 8));
  check Alcotest.int "grid corner" 2
    (Mincut.degree_upper_bound (Generators.grid ~rows:4 ~cols:4))

let mincut_estimate_shape () =
  (* The estimator must separate a cycle (λ=2) from a 5-clique blowup
     (λ=4): coarse but meaningful, with fixed seeds for determinism. *)
  let lambda_of g = (Mincut.estimate ~seed:12 ~trials:4 g).Mincut.lambda in
  let cycle = lambda_of (Generators.cycle 24) in
  let torus = lambda_of (Generators.torus ~rows:5 ~cols:5) in
  check Alcotest.bool "cycle estimate in range" true (cycle >= 0.5 && cycle <= 10.);
  check Alcotest.bool "torus >= cycle" true (torus >= cycle);
  let est = Mincut.estimate ~seed:12 ~trials:4 (Generators.cycle 24) in
  check Alcotest.bool "upper bound respected" true
    (float_of_int est.Mincut.min_degree >= 1.);
  check Alcotest.bool "rounds accounted" true (est.Mincut.pa_rounds > 0)

(* --- Karger ------------------------------------------------------------------ *)

let karger_matches_stoer_wagner =
  QCheck.Test.make ~name:"Karger = Stoer-Wagner on random graphs" ~count:10
    QCheck.(pair (int_bound 1000) (int_range 4 16))
    (fun (seed, n) ->
      let g = random_connected_graph seed ~n ~extra:n in
      Karger.min_cut (Rng.create (seed + 1)) g = Stoer_wagner.min_cut g)

let karger_known () =
  check Alcotest.int "cycle" 2 (Karger.min_cut (Rng.create 1) (Generators.cycle 12));
  check Alcotest.int "K6" 5 (Karger.min_cut (Rng.create 1) (Generators.complete 6));
  check Alcotest.int "path" 1 (Karger.min_cut (Rng.create 1) (Generators.path 8));
  check Alcotest.bool "one contraction upper-bounds" true
    (Karger.contract_once (Rng.create 2) (Generators.cycle 12) >= 2)

let mincut_lambda_one_and_refine () =
  check Alcotest.bool "lollipop has a bridge" true
    (Mincut.lambda_is_one (Generators.lollipop ~clique:5 ~tail:4));
  check Alcotest.bool "torus bridgeless" false
    (Mincut.lambda_is_one (Generators.torus ~rows:4 ~cols:4));
  let est = Mincut.estimate ~seed:12 ~trials:3 (Generators.lollipop ~clique:5 ~tail:4) in
  check (Alcotest.float 1e-9) "refine snaps bridges to 1" 1.
    (Mincut.refine (Generators.lollipop ~clique:5 ~tail:4) est)

(* --- SSSP ------------------------------------------------------------------ *)

let sssp_bfs_matches () =
  let g = Generators.grid ~rows:5 ~cols:7 in
  let dist, stats = Sssp.bfs g ~src:3 in
  let expected = Bfs.distances g ~src:3 in
  check Alcotest.bool "distances equal" true (dist = expected);
  check Alcotest.bool "O(D) rounds" true (stats.Simulator.rounds <= 6 * (5 + 7))

let bellman_ford_matches_dijkstra =
  QCheck.Test.make ~name:"distributed Bellman-Ford = Dijkstra" ~count:12
    QCheck.(pair (int_bound 1000) (int_range 3 30))
    (fun (seed, n) ->
      let g = random_connected_graph seed ~n ~extra:(n / 2) in
      let w = Weights.random (Rng.create (seed + 1)) g ~max_weight:20 in
      let result = Sssp.bellman_ford w ~src:0 in
      result.Sssp.distances = Dijkstra.distances w ~src:0)

let bellman_ford_convergence () =
  let g = Generators.path 12 in
  let w = Weights.uniform g 3 in
  let r = Sssp.bellman_ford w ~src:0 in
  check Alcotest.int "distance to end" 33 r.Sssp.distances.(11);
  (* Hop h settles in round h+1: the source's announcement takes one round
     to reach hop 1, so hop 11 improves at round 12. *)
  check Alcotest.int "converges in hop-diameter+1 rounds" 12 r.Sssp.convergence_round

let bellman_ford_hop_bound () =
  let g = Generators.path 10 in
  let w = Weights.uniform g 1 in
  let r = Sssp.bellman_ford ~hop_bound:3 w ~src:0 in
  check Alcotest.int "within bound exact" 3 r.Sssp.distances.(3);
  check Alcotest.int "beyond bound unreachable" max_int r.Sssp.distances.(9)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      mst_matches_kruskal;
      mst_baseline_mode_matches;
      mst_induced_mode_matches;
      connectivity_matches_components;
      bellman_ford_matches_dijkstra;
      karger_matches_stoer_wagner;
    ]

let suite =
  [
    case "kruskal: path" `Quick kruskal_path;
    case "kruskal: cycle" `Quick kruskal_cycle_drops_heaviest;
    case "stoer-wagner: known cuts" `Quick stoer_wagner_known_cuts;
    case "stoer-wagner: bridge" `Quick stoer_wagner_bridge;
    case "stoer-wagner: weighted" `Quick stoer_wagner_weighted;
    case "mst: grid phases" `Quick mst_grid_phases;
    case "connectivity: full graph" `Quick connectivity_full_graph;
    case "mincut: degree bound" `Quick mincut_degree_bound;
    case "mincut: estimate shape" `Slow mincut_estimate_shape;
    case "mincut: bridges and refine" `Quick mincut_lambda_one_and_refine;
    case "karger: known cuts" `Quick karger_known;
    case "sssp: bfs matches" `Quick sssp_bfs_matches;
    case "sssp: convergence" `Quick bellman_ford_convergence;
    case "sssp: hop bound" `Quick bellman_ford_hop_bound;
  ]
  @ props
