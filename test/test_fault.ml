(* Tests for the fault-injection framework: plan JSON, injector
   determinism, byte-identity of fault-free runs, the Reliable ARQ
   transport, the hardened JSON parser, and the self-verifying protocol
   outcomes (Complete vs Degraded — never silently wrong values). *)

open Core

let check = Alcotest.check
let case = Alcotest.test_case

let random_connected_graph seed ~n ~extra =
  let rng = Rng.create seed in
  let b = Builder.create ~n in
  for v = 1 to n - 1 do
    Builder.add_edge b (Rng.int rng v) v
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra && !attempts < 20 * extra do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Builder.mem_edge b u v) then begin
      Builder.add_edge b u v;
      incr added
    end
  done;
  Builder.graph b

(* --- Fault plans ------------------------------------------------------- *)

(* Edge overrides extend the plan's default profile: omitted fields
   inherit from it on parse, so an exact roundtrip needs overrides built
   on top of [default]. *)
let sample_plan =
  let default = { Fault.reliable_edge with Fault.drop = 0.1; reorder = 0.05 } in
  {
    Fault.seed = 42;
    default;
    edges =
      [
        (3, { default with Fault.duplicate = 0.5; delay = 2 });
        (7, { default with Fault.down = [ (5, 9); (20, 20) ] });
      ];
    crashes = [ { Fault.node = 4; round = 6 } ];
  }

let plan_roundtrip () =
  let json = Fault.plan_to_json sample_plan in
  (match Fault.plan_of_json json with
  | Ok p -> check Alcotest.bool "roundtrip" true (p = sample_plan)
  | Error e -> Alcotest.fail e);
  (* A hand-written document parses too, inheriting from "default". *)
  let doc =
    {|{ "schema": "lcs-fault-plan/1", "seed": 3,
        "default": { "drop": 0.25 },
        "edges": [ { "edge": 1, "delay": 1 } ],
        "crashes": [ { "node": 2, "round": 4 } ] }|}
  in
  match Fault.plan_of_string doc with
  | Error e -> Alcotest.fail e
  | Ok p ->
      check Alcotest.int "seed" 3 p.Fault.seed;
      check (Alcotest.float 1e-9) "default drop" 0.25 p.Fault.default.Fault.drop;
      let f = List.assoc 1 p.Fault.edges in
      check (Alcotest.float 1e-9) "edge inherits drop" 0.25 f.Fault.drop;
      check Alcotest.int "edge delay" 1 f.Fault.delay;
      check Alcotest.bool "crash parsed" true
        (p.Fault.crashes = [ { Fault.node = 2; round = 4 } ])

let plan_validation () =
  let bad probs = match Fault.validate probs with Ok _ -> false | Error _ -> true in
  check Alcotest.bool "drop > 1 rejected" true
    (bad
       {
         sample_plan with
         Fault.default = { Fault.reliable_edge with Fault.drop = 1.5 };
       });
  check Alcotest.bool "negative delay rejected" true
    (bad
       {
         sample_plan with
         Fault.edges = [ (0, { Fault.reliable_edge with Fault.delay = -1 }) ];
       });
  check Alcotest.bool "crash round 0 rejected" true
    (bad { sample_plan with Fault.crashes = [ { Fault.node = 0; round = 0 } ] });
  check Alcotest.bool "missing schema rejected" true
    (match Fault.plan_of_string {|{ "seed": 1 }|} with
    | Error _ -> true
    | Ok _ -> false)

(* The checked-in partition adversary: it must parse, validate, and its
   down windows must name exactly a cut of the 8x8 grid it targets —
   removing those edges disconnects the graph, which is what makes the
   plan an honest partition and not just scattered noise. *)
let partition_heavy_plan_severs_the_grid () =
  let path =
    Filename.concat (Filename.dirname Sys.executable_name)
      "../plans/partition_heavy.json"
  in
  match Fault.load_plan path with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      (match Fault.validate plan with Ok _ -> () | Error e -> Alcotest.fail e);
      let downed =
        List.filter_map
          (fun (e, f) -> if f.Fault.down <> [] then Some e else None)
          plan.Fault.edges
      in
      check Alcotest.bool "has down windows" true (downed <> []);
      let g = Generators.grid ~rows:8 ~cols:8 in
      check Alcotest.bool "names real edges" true
        (List.for_all (fun e -> e >= 0 && e < Graph.m g) downed);
      let b = Builder.create ~n:(Graph.n g) in
      Graph.iter_edges g (fun e u v ->
          if not (List.mem e downed) then Builder.add_edge b u v);
      check Alcotest.bool "the grid is connected" true (Components.is_connected g);
      check Alcotest.bool "minus the downed edges it is not" false
        (Components.is_connected (Builder.graph b))

(* --- Byte-identity of fault-free runs ---------------------------------- *)

(* Max-flooding with a fixed halting clock: deterministic, every node
   sends every round until it halts, so any divergence between the plain
   and the empty-injector code paths would surface in states, stats or
   the recorded event stream. *)
type flood = { best : int; clock : int }

let flood_program ~rounds =
  {
    Simulator.init = (fun ctx -> { best = ctx.Simulator.node; clock = 0 });
    on_round =
      (fun ctx st ~inbox ->
        let best = List.fold_left (fun b (_p, v) -> max b v) st.best inbox in
        let st = { best; clock = st.clock + 1 } in
        let degree = Array.length ctx.Simulator.neighbors in
        let out = List.init degree (fun p -> (p, st.best)) in
        (st, if st.clock >= rounds then [] else out));
    is_halted = (fun st -> st.clock >= rounds);
    msg_words = (fun _ -> 1);
  }

let record_run ?faults g =
  let recorder = Trace.Recorder.create () in
  let states, stats =
    Simulator.run ~tracer:(Trace.Recorder.tracer recorder) ?faults g
      (flood_program ~rounds:12)
  in
  (states, stats, Json.to_string (Trace.Recorder.to_json recorder))

let empty_injector_is_invisible () =
  let g = random_connected_graph 5 ~n:20 ~extra:10 in
  let states0, stats0, events0 = record_run g in
  let injector = Fault.compile Fault.empty in
  let states1, stats1, events1 = record_run ~faults:injector g in
  check Alcotest.bool "states identical" true (states0 = states1);
  check Alcotest.bool "stats identical" true (stats0 = stats1);
  check Alcotest.string "event stream identical" events0 events1;
  check Alcotest.bool "no faults observed" true
    (Fault.no_faults_observed (Fault.counts injector))

let injector_is_deterministic () =
  let g = random_connected_graph 9 ~n:16 ~extra:8 in
  let plan =
    {
      Fault.empty with
      Fault.default =
        { Fault.reliable_edge with Fault.drop = 0.2; duplicate = 0.1; reorder = 0.1 };
      crashes = [ { Fault.node = 11; round = 7 } ];
    }
  in
  let run () = record_run ~faults:(Fault.compile ~seed:13 plan) g in
  let states0, stats0, events0 = run () in
  let states1, stats1, events1 = run () in
  check Alcotest.bool "states identical" true (states0 = states1);
  check Alcotest.bool "stats identical" true (stats0 = stats1);
  check Alcotest.string "fault event stream identical" events0 events1

(* --- Simulator: partial state on round exhaustion ----------------------- *)

let out_of_rounds_keeps_partial_state () =
  let g = Generators.path 6 in
  let never_halts =
    {
      Simulator.init = (fun _ctx -> 0);
      on_round = (fun _ctx st ~inbox:_ -> (st + 1, []));
      is_halted = (fun _ -> false);
      msg_words = (fun _ -> 1);
    }
  in
  match Simulator.run_outcome ~max_rounds:9 g never_halts with
  | Simulator.Finished _ -> Alcotest.fail "must run out of rounds"
  | Simulator.Out_of_rounds (states, p) ->
      check Alcotest.int "rounds spent" 9 p.Simulator.partial_stats.Simulator.rounds;
      check Alcotest.int "all unhalted" 6 (List.length p.Simulator.unhalted);
      check Alcotest.bool "no crashes" true (p.Simulator.crashed_nodes = []);
      check Alcotest.bool "state progressed" true (Array.for_all (fun s -> s = 9) states)

(* --- Reliable transport under concrete fault shapes ---------------------- *)

let total_loss_degrades_honestly () =
  let g = Generators.path 5 in
  let info = Tree_info.of_tree g (Bfs.tree g ~root:0) in
  let plan =
    { Fault.empty with Fault.default = { Fault.reliable_edge with Fault.drop = 1.0 } }
  in
  match Broadcast.run_outcome ~faults:(Fault.compile plan) g info ~value:77 with
  | Outcome.Complete _ -> Alcotest.fail "total loss cannot complete"
  | Outcome.Degraded (r, d) ->
      check (Alcotest.list Alcotest.int) "everyone but the root unreached"
        [ 1; 2; 3; 4 ] r.Broadcast.unreached;
      check Alcotest.bool "root kept its value" true (r.Broadcast.values.(0) = Some 77);
      check Alcotest.bool "nobody holds a wrong value" true
        (Array.for_all (function Some v -> v = 77 | None -> true) r.Broadcast.values);
      check Alcotest.bool "dead links reported" true (d.Outcome.unresponsive <> [])

let crash_isolates_subtree () =
  let g = Generators.path 8 in
  let info = Tree_info.of_tree g (Bfs.tree g ~root:0) in
  let plan = { Fault.empty with Fault.crashes = [ { Fault.node = 3; round = 2 } ] } in
  match Broadcast.run_outcome ~faults:(Fault.compile plan) g info ~value:5 with
  | Outcome.Complete _ -> Alcotest.fail "a crash cannot complete"
  | Outcome.Degraded (r, d) ->
      check (Alcotest.list Alcotest.int) "crashed" [ 3 ] d.Outcome.crashed;
      check (Alcotest.list Alcotest.int) "the whole subtree below 3 is cut off"
        [ 3; 4; 5; 6; 7 ] r.Broadcast.unreached;
      check Alcotest.bool "upstream nodes delivered" true
        (r.Broadcast.values.(1) = Some 5 && r.Broadcast.values.(2) = Some 5)

let arq_rides_out_link_down () =
  let g = Generators.path 2 in
  let info = Tree_info.of_tree g (Bfs.tree g ~root:0) in
  let plan =
    {
      Fault.empty with
      Fault.edges = [ (0, { Fault.reliable_edge with Fault.down = [ (1, 5) ] }) ];
    }
  in
  (* Raw: the single send falls in the outage and is gone. *)
  (match
     Broadcast.run_outcome ~reliable:false ~faults:(Fault.compile plan) g info ~value:9
   with
  | Outcome.Complete _ -> Alcotest.fail "raw broadcast cannot survive the outage"
  | Outcome.Degraded (r, _) ->
      check (Alcotest.list Alcotest.int) "raw loses node 1" [ 1 ] r.Broadcast.unreached);
  (* Reliable: retransmission outlives the outage. *)
  match Broadcast.run_outcome ~faults:(Fault.compile plan) g info ~value:9 with
  | Outcome.Complete r ->
      check Alcotest.bool "delivered after the outage" true
        (r.Broadcast.values.(1) = Some 9);
      check Alcotest.bool "took retransmissions" true (r.Broadcast.retransmissions > 0)
  | Outcome.Degraded _ -> Alcotest.fail "ARQ must ride out a 5-round outage"

let convergecast_excludes_crashed_child () =
  let g = Generators.path 6 in
  let info = Tree_info.of_tree g (Bfs.tree g ~root:0) in
  let values = Array.init 6 (fun v -> 10 * (v + 1)) in
  (* Round 1: node 4 is gone before its subtree's value can escape upward
     (a later crash may race the ARQ delivery and legitimately complete
     the subtree). *)
  let plan = { Fault.empty with Fault.crashes = [ { Fault.node = 4; round = 1 } ] } in
  match
    Convergecast.run_outcome ~faults:(Fault.compile plan) g info ~values ~combine:( + )
  with
  | Outcome.Complete _ -> Alcotest.fail "a crash cannot complete"
  | Outcome.Degraded (r, _) ->
      check Alcotest.bool "validated against included set" true r.Convergecast.validated;
      check Alcotest.bool "total is the included sum" true
        (r.Convergecast.total
        = List.fold_left (fun acc v -> acc + values.(v)) 0 r.Convergecast.included);
      check (Alcotest.list Alcotest.int) "crashed subtree excluded" [ 4; 5 ]
        r.Convergecast.excluded;
      check (Alcotest.list Alcotest.int) "upstream chain included" [ 0; 1; 2; 3 ]
        r.Convergecast.included

(* --- ARQ timing edge cases ----------------------------------------------- *)

(* The capped-exponential retransmission schedule, pinned end to end on a
   single edge: with [{rto; rto_max; max_retries}] the data frame goes out
   at rounds t_1 = 1 and t_{k+1} = t_k + min(2^(k-1)*rto, rto_max). A
   link-down window covering every send through t_(max_retries) is exactly
   lethal; one round shorter and the final retransmission slips through. *)
let send_rounds (c : Reliable.config) =
  let rec go k t rto acc =
    if k >= c.Reliable.max_retries then List.rev (t :: acc)
    else go (k + 1) (t + rto) (min (2 * rto) c.Reliable.rto_max) (t :: acc)
  in
  go 1 1 c.Reliable.rto []

let outage_outcome config ~down =
  let g = Generators.path 2 in
  let info = Tree_info.of_tree g (Bfs.tree g ~root:0) in
  let plan =
    {
      Fault.empty with
      Fault.edges = [ (0, { Fault.reliable_edge with Fault.down = [ down ] }) ];
    }
  in
  Broadcast.run_outcome ~config ~faults:(Fault.compile plan) g info ~value:31

let dead_link_exactly_at_threshold () =
  let config = { Reliable.rto = 2; rto_max = 8; max_retries = 3; linger = 20 } in
  let last = List.fold_left (fun _ t -> t) 0 (send_rounds config) in
  check Alcotest.int "schedule: 1, +2, +4" 7 last;
  (* outage ends one round before the last retransmission: delivered *)
  (match outage_outcome config ~down:(1, last - 1) with
  | Outcome.Complete r ->
      check Alcotest.bool "retransmitted through the outage" true
        (r.Broadcast.retransmissions > 0)
  | Outcome.Degraded _ -> Alcotest.fail "the final retransmission must get through");
  (* outage swallows the last send too: the channel is declared dead *)
  match outage_outcome config ~down:(1, last) with
  | Outcome.Complete _ -> Alcotest.fail "every attempt was swallowed"
  | Outcome.Degraded (r, d) ->
      check Alcotest.bool "dead link reported" true (d.Outcome.unresponsive <> []);
      check (Alcotest.list Alcotest.int) "the leaf never got the value" [ 1 ]
        r.Broadcast.unreached

let prop_backoff_schedule_is_the_threshold =
  QCheck.Test.make ~name:"reliable: capped backoff sets the exact death threshold"
    ~count:25
    QCheck.(triple (int_range 1 4) (int_range 0 2) (int_range 2 4))
    (fun (rto, cap_shift, max_retries) ->
      (* rto_max >= 2: the ack round-trip takes two rounds, so a 1-round
         capped timeout would (correctly) declare death while the final
         ack is still in flight *)
      let rto_max = max 2 (rto * (1 lsl cap_shift)) in
      let config = { Reliable.rto; rto_max; max_retries; linger = rto_max + 4 } in
      (* rto >= 1 and max_retries >= 2 put the last send at round >= 2,
         so the pre-outage window [1, last-1] is never empty *)
      let last = List.fold_left (fun _ t -> t) 0 (send_rounds config) in
      let survives =
        match outage_outcome config ~down:(1, last - 1) with
        | Outcome.Complete _ -> true
        | Outcome.Degraded _ -> false
      in
      let dies =
        match outage_outcome config ~down:(1, last) with
        | Outcome.Complete _ -> false
        | Outcome.Degraded (_, d) -> d.Outcome.unresponsive <> []
      in
      survives && dies)

let linger_guards_against_spurious_death () =
  (* drop exactly the first ack (the [2,2] window): the sender retransmits
     and the receiver must still be awake to re-ack the duplicate. A
     1-round linger halts the receiver first, turning the lost ack into a
     spurious dead link — the delivered value notwithstanding. *)
  let outcome ~linger =
    let g = Generators.path 2 in
    let info = Tree_info.of_tree g (Bfs.tree g ~root:0) in
    let plan =
      {
        Fault.empty with
        Fault.edges = [ (0, { Fault.reliable_edge with Fault.down = [ (2, 2) ] }) ];
      }
    in
    Broadcast.run_outcome
      ~config:{ Reliable.rto = 2; rto_max = 8; max_retries = 4; linger }
      ~faults:(Fault.compile plan) g info ~value:8
  in
  (match outcome ~linger:1 with
  | Outcome.Complete _ -> Alcotest.fail "a 1-round linger must orphan the lost ack"
  | Outcome.Degraded (r, d) ->
      check Alcotest.bool "spurious dead link" true (d.Outcome.unresponsive <> []);
      check Alcotest.bool "yet the value was delivered" true
        (r.Broadcast.values.(1) = Some 8));
  match outcome ~linger:9 with
  | Outcome.Complete r ->
      check Alcotest.bool "the duplicate was re-acked" true
        (r.Broadcast.retransmissions > 0)
  | Outcome.Degraded _ -> Alcotest.fail "linger > rto_max must ride out a lost ack"

let prop_clean_finish_is_quiesced =
  QCheck.Test.make ~name:"reliable: a clean finish leaves every channel drained"
    ~count:25
    QCheck.(pair (int_bound 10_000) (int_range 4 16))
    (fun (seed, n) ->
      let n = max 4 n in
      let g = random_connected_graph seed ~n ~extra:(n / 3) in
      let plan =
        {
          Fault.empty with
          Fault.seed = seed + 1;
          default = { Fault.reliable_edge with Fault.drop = 0.25; duplicate = 0.1 };
        }
      in
      let wrapped = Reliable.wrap (flood_program ~rounds:8) in
      match
        Simulator.run_outcome ~max_rounds:4_000 ~faults:(Fault.compile plan) g wrapped
      with
      | Simulator.Out_of_rounds _ -> QCheck.assume_fail ()
      | Simulator.Finished (states, _) ->
          Reliable.dead_links states <> [] || Reliable.quiesced states)

(* --- Fault-tolerant pipeline entry points -------------------------------- *)

let construct_outcome_faultfree_is_complete () =
  let g = Generators.grid ~rows:4 ~cols:4 in
  let partition = Partition.grid_rows g ~rows:4 ~cols:4 in
  match
    Distributed.construct_outcome ~variant:Distributed.Deterministic partition ~root:0
  with
  | Outcome.Degraded _ -> Alcotest.fail "fault-free pipeline must complete"
  | Outcome.Complete r ->
      check Alcotest.bool "constructed" true (r.Distributed.constructed <> None);
      check Alcotest.bool "validated against centralized O" true
        (r.Distributed.validated = Some true)

let construct_outcome_root_crash_degrades () =
  let g = Generators.grid ~rows:4 ~cols:4 in
  let partition = Partition.grid_rows g ~rows:4 ~cols:4 in
  let plan = { Fault.empty with Fault.crashes = [ { Fault.node = 0; round = 1 } ] } in
  match
    Distributed.construct_outcome ~variant:Distributed.Deterministic
      ~faults:(Fault.compile plan) partition ~root:0
  with
  | Outcome.Complete _ -> Alcotest.fail "a crashed root cannot complete"
  | Outcome.Degraded (r, d) ->
      check (Alcotest.option Alcotest.string) "BFS stage failed" (Some "bfs")
        r.Distributed.failed_stage;
      check (Alcotest.list Alcotest.int) "root crashed" [ 0 ] d.Outcome.crashed

let minimum_outcome_survives_crash () =
  let g = Generators.grid ~rows:6 ~cols:6 in
  let partition = Partition.grid_rows g ~rows:6 ~cols:6 in
  let tree = Bfs.tree g ~root:0 in
  let sc = (Boost.full partition ~tree).Boost.shortcut in
  let values = Array.init 36 (fun v -> 1000 - v) in
  let plan = { Fault.empty with Fault.crashes = [ { Fault.node = 14; round = 4 } ] } in
  match
    Sim_aggregate.minimum_outcome ~faults:(Fault.compile plan) (Rng.create 2) sc ~values
  with
  | Outcome.Complete _ -> Alcotest.fail "a crash cannot complete"
  | Outcome.Degraded (r, d) ->
      check (Alcotest.list Alcotest.int) "crashed" [ 14 ] d.Outcome.crashed;
      check Alcotest.bool "no surviving member diverged" true
        (r.Sim_aggregate.diverged = [])

(* --- Hardened JSON parser ------------------------------------------------ *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let json_errors_carry_position () =
  (match Json.of_string "{\n  \"a\": 1,\n  \"b\": }" with
  | Ok _ -> Alcotest.fail "must reject"
  | Error msg -> check Alcotest.bool "reports line 3" true (contains ~sub:"line 3" msg))

let json_depth_is_bounded () =
  let deep = String.make 2000 '[' in
  (match Json.of_string deep with
  | Ok _ -> Alcotest.fail "must reject runaway nesting"
  | Error msg ->
      check Alcotest.bool "mentions nesting" true (contains ~sub:"nesting" msg));
  (match Json.of_string ~max_depth:3 "[[[[1]]]]" with
  | Ok _ -> Alcotest.fail "must respect max_depth"
  | Error _ -> ());
  match Json.of_string ~max_depth:4 "[[[[1]]]]" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* --- Properties ---------------------------------------------------------- *)

let random_plan rng ~n =
  let crashes =
    List.init (Rng.int rng 3) (fun _ ->
        { Fault.node = 1 + Rng.int rng (max 1 (n - 1)); round = 1 + Rng.int rng 10 })
  in
  {
    Fault.empty with
    Fault.seed = 1 + Rng.int rng 10_000;
    default =
      {
        Fault.reliable_edge with
        Fault.drop = float_of_int (Rng.int rng 30) /. 100.;
        duplicate = float_of_int (Rng.int rng 10) /. 100.;
        reorder = float_of_int (Rng.int rng 10) /. 100.;
      };
    crashes;
  }

let prop_reliable_broadcast_never_wrong =
  QCheck.Test.make ~name:"reliable broadcast: complete or truthfully degraded"
    ~count:30
    QCheck.(pair (int_bound 10_000) (int_range 4 20))
    (fun (seed, n) ->
      let n = max 4 n in
      (* the shrinker explores below the generator's range *)
      let g = random_connected_graph seed ~n ~extra:(n / 3) in
      let rng = Rng.create (seed + 1) in
      let plan = random_plan rng ~n in
      let info = Tree_info.of_tree g (Bfs.tree g ~root:0) in
      let value = 123_456 in
      match Broadcast.run_outcome ~faults:(Fault.compile plan) g info ~value with
      | Outcome.Complete r ->
          r.Broadcast.unreached = []
          && Array.for_all (fun v -> v = Some value) r.Broadcast.values
      | Outcome.Degraded (r, d) ->
          (* Degradation must tell the truth: there is a concrete cause (a
             late crash can leave every node reached yet still bar a
             Complete claim), unreached = affected, and no node ever holds
             anything but the root's value. *)
          let has_cause =
            d.Outcome.crashed <> [] || d.Outcome.unresponsive <> []
            || d.Outcome.out_of_rounds || d.Outcome.affected <> []
          in
          has_cause
          && r.Broadcast.unreached = d.Outcome.affected
          && Array.for_all
               (function Some v -> v = value | None -> true)
               r.Broadcast.values
          && List.for_all (fun v -> r.Broadcast.values.(v) = None) r.Broadcast.unreached)

let prop_reliable_convergecast_validates =
  QCheck.Test.make ~name:"reliable convergecast: total always validates"
    ~count:30
    QCheck.(pair (int_bound 10_000) (int_range 4 20))
    (fun (seed, n) ->
      let n = max 4 n in
      let g = random_connected_graph seed ~n ~extra:(n / 3) in
      let rng = Rng.create (seed + 2) in
      let plan = random_plan rng ~n in
      let info = Tree_info.of_tree g (Bfs.tree g ~root:0) in
      let values = Array.init n (fun v -> (v * 17) + 1) in
      match
        Convergecast.run_outcome ~faults:(Fault.compile plan) g info ~values
          ~combine:( + )
      with
      | Outcome.Complete r ->
          r.Convergecast.validated
          && r.Convergecast.total = Array.fold_left ( + ) 0 values
      | Outcome.Degraded (r, _) ->
          (* Never a silently wrong aggregate: whatever subset was included,
             the reported total is exactly its sum. *)
          r.Convergecast.validated
          && r.Convergecast.total
             = List.fold_left (fun acc v -> acc + values.(v)) 0 r.Convergecast.included)

let prop_fault_free_byte_identical =
  QCheck.Test.make ~name:"empty injector: byte-identical runs" ~count:20
    QCheck.(pair (int_bound 10_000) (int_range 3 24))
    (fun (seed, n) ->
      let n = max 3 n in
      let g = random_connected_graph seed ~n ~extra:(n / 2) in
      let _, stats0, events0 = record_run g in
      let _, stats1, events1 = record_run ~faults:(Fault.compile Fault.empty) g in
      stats0 = stats1 && events0 = events1)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_reliable_broadcast_never_wrong;
      prop_reliable_convergecast_validates;
      prop_fault_free_byte_identical;
      prop_backoff_schedule_is_the_threshold;
      prop_clean_finish_is_quiesced;
    ]

let suite =
  [
    case "plan: json roundtrip" `Quick plan_roundtrip;
    case "plan: validation" `Quick plan_validation;
    case "plan: partition_heavy severs the grid" `Quick
      partition_heavy_plan_severs_the_grid;
    case "reliable: dead link exactly at threshold" `Quick
      dead_link_exactly_at_threshold;
    case "reliable: linger guards against spurious death" `Quick
      linger_guards_against_spurious_death;
    case "simulator: empty injector invisible" `Quick empty_injector_is_invisible;
    case "simulator: injector deterministic" `Quick injector_is_deterministic;
    case "simulator: out-of-rounds partial state" `Quick out_of_rounds_keeps_partial_state;
    case "broadcast: total loss degrades" `Quick total_loss_degrades_honestly;
    case "broadcast: crash isolates subtree" `Quick crash_isolates_subtree;
    case "broadcast: ARQ rides out link-down" `Quick arq_rides_out_link_down;
    case "convergecast: crashed child excluded" `Quick convergecast_excludes_crashed_child;
    case "construct: fault-free complete" `Quick construct_outcome_faultfree_is_complete;
    case "construct: root crash degrades" `Quick construct_outcome_root_crash_degrades;
    case "partwise: minimum survives crash" `Quick minimum_outcome_survives_crash;
    case "json: errors carry position" `Quick json_errors_carry_position;
    case "json: depth bounded" `Quick json_depth_is_bounded;
  ]
  @ props
