(* Smoke tests for the experiment registry: ids, lookup, and a fast
   end-to-end table generation. The heavyweight sweeps run from
   bin/experiments and bench/main; here we only pin the harness contract. *)

let check = Alcotest.check
let case = Alcotest.test_case

let registry_ids () =
  let ids = List.map fst Lcs_experiments.Registry.all in
  check Alcotest.int "twenty experiments" 20 (List.length ids);
  check (Alcotest.list Alcotest.string) "expected ids"
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11";
      "E12"; "E13"; "E14"; "E15"; "E16"; "E17"; "E18"; "E19"; "E20" ]
    ids;
  let unique = List.sort_uniq compare ids in
  check Alcotest.int "ids unique" (List.length ids) (List.length unique)

let registry_find () =
  check Alcotest.bool "finds E2" true (Lcs_experiments.Registry.find "E2" <> None);
  check Alcotest.bool "case-insensitive" true
    (Lcs_experiments.Registry.find "e12" <> None);
  check Alcotest.bool "unknown" true (Lcs_experiments.Registry.find "E99" = None)

let e12_runs_fast () =
  match Lcs_experiments.Registry.find "E12" with
  | None -> Alcotest.fail "E12 missing"
  | Some f ->
      let outcome = f ~seed:3 () in
      check Alcotest.string "id" "E12" outcome.Lcs_experiments.Exp_types.id;
      let rendered = Core.Table.render outcome.Lcs_experiments.Exp_types.table in
      check Alcotest.bool "non-trivial table" true (String.length rendered > 100);
      check Alcotest.bool "has notes" true
        (outcome.Lcs_experiments.Exp_types.notes <> [])

let seeds_are_respected () =
  (* Different seeds change randomized columns (E12's trace depends on the
     partition only, so use E11's certificate densities instead). *)
  match Lcs_experiments.Registry.find "E12" with
  | None -> Alcotest.fail "E12 missing"
  | Some f ->
      let a = f ~seed:1 () in
      let b = f ~seed:1 () in
      check Alcotest.string "deterministic under equal seeds"
        (Core.Table.render a.Lcs_experiments.Exp_types.table)
        (Core.Table.render b.Lcs_experiments.Exp_types.table)

let suite =
  [
    case "registry: ids" `Quick registry_ids;
    case "registry: find" `Quick registry_find;
    case "E12 runs" `Quick e12_runs_fast;
    case "determinism under seed" `Quick seeds_are_respected;
  ]
