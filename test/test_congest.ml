(* Tests for the CONGEST simulator and its basic tree protocols. *)

open Core

let check = Alcotest.check
let case = Alcotest.test_case

let random_connected_graph seed ~n ~extra =
  let rng = Rng.create seed in
  let b = Builder.create ~n in
  for v = 1 to n - 1 do
    Builder.add_edge b (Rng.int rng v) v
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra && !attempts < 20 * extra do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Builder.mem_edge b u v) then begin
      Builder.add_edge b u v;
      incr added
    end
  done;
  Builder.graph b

(* --- Simulator --------------------------------------------------------- *)

(* A two-node ping-pong: node 0 sends a counter, node 1 echoes it back
   incremented; both halt when it reaches a target. *)
type ping_state = { value : int; done_ : bool }

let ping_pong_program target =
  {
    Simulator.init =
      (fun ctx -> { value = (if ctx.Simulator.node = 0 then 0 else -1); done_ = false });
    on_round =
      (fun ctx st ~inbox ->
        let received = List.fold_left (fun _ (_p, v) -> Some v) None inbox in
        match received with
        | Some v when v >= target ->
            (* Echo once more so the peer can halt too, then halt. *)
            ({ value = v; done_ = true }, if v = target then [ (0, v + 1) ] else [])
        | Some v -> ({ st with value = v }, [ (0, v + 1) ])
        | None ->
            if ctx.Simulator.node = 0 && st.value = 0 then ({ st with value = 1 }, [ (0, 1) ])
            else (st, []))
    ;
    is_halted = (fun st -> st.done_);
    msg_words = (fun _ -> 1);
  }

let simulator_ping_pong () =
  let g = Generators.path 2 in
  let states, stats = Simulator.run g (ping_pong_program 10) in
  check Alcotest.bool "both halted" true
    (Array.for_all (fun st -> st.done_) states);
  check Alcotest.bool "took about target rounds" true
    (stats.Simulator.rounds >= 10 && stats.Simulator.rounds <= 13);
  check Alcotest.bool "messages bounded" true (stats.Simulator.messages <= 12)

let simulator_enforces_bandwidth () =
  (* A node that sends two words on one port in one round must be caught. *)
  let g = Generators.path 2 in
  let program =
    {
      Simulator.init = (fun _ -> false);
      on_round =
        (fun ctx st ~inbox ->
          ignore inbox;
          if ctx.Simulator.node = 0 && not st then (true, [ (0, 1); (0, 2) ])
          else (true, []))
      ;
      is_halted = (fun st -> st);
      msg_words = (fun _ -> 1);
    }
  in
  check Alcotest.bool "raises" true
    (try
       ignore (Simulator.run g program);
       false
     with Simulator.Bandwidth_exceeded e -> e.node = 0 && e.words = 2)

let simulator_allows_wider_bandwidth () =
  let g = Generators.path 2 in
  let program =
    {
      Simulator.init = (fun _ -> false);
      on_round =
        (fun ctx st ~inbox ->
          ignore inbox;
          if ctx.Simulator.node = 0 && not st then (true, [ (0, 1); (0, 2) ])
          else (true, []))
      ;
      is_halted = (fun st -> st);
      msg_words = (fun _ -> 1);
    }
  in
  let _states, stats = Simulator.run ~bandwidth:2 g program in
  check Alcotest.int "both words delivered" 2 stats.Simulator.words

let simulator_rejects_oversized_message () =
  (* A single 2-word message cannot fit bandwidth 1. *)
  let g = Generators.path 2 in
  let program =
    {
      Simulator.init = (fun _ -> false);
      on_round =
        (fun ctx st ~inbox ->
          ignore inbox;
          if ctx.Simulator.node = 0 && not st then (true, [ (0, "two words") ])
          else (true, []))
      ;
      is_halted = (fun st -> st);
      msg_words = (fun _ -> 2);
    }
  in
  check Alcotest.bool "oversized message caught" true
    (try
       ignore (Simulator.run g program);
       false
     with Simulator.Bandwidth_exceeded e -> e.words = 2 && e.limit = 1)

let simulator_round_limit () =
  (* Nodes that never halt trip the limit. *)
  let g = Generators.path 2 in
  let program =
    {
      Simulator.init = (fun _ -> ());
      on_round = (fun _ () ~inbox -> ignore inbox; ((), []));
      is_halted = (fun () -> false);
      msg_words = (fun _ -> 1);
    }
  in
  check Alcotest.bool "round limit raised" true
    (try
       ignore (Simulator.run ~max_rounds:50 g program);
       false
     with Simulator.Round_limit 50 -> true)

(* --- Sync_bfs ----------------------------------------------------------- *)

let sync_bfs_path () =
  let g = Generators.path 8 in
  let tree, height, stats = Sync_bfs.run g ~root:0 in
  check Alcotest.int "height" 7 height;
  check Alcotest.int "tree height agrees" 7 (Rooted_tree.height tree);
  check Alcotest.bool "O(D) rounds" true (stats.Simulator.rounds <= 4 * 8 + 10)

let sync_bfs_star () =
  let g = Generators.star 20 in
  let tree, height, _stats = Sync_bfs.run g ~root:0 in
  check Alcotest.int "height" 1 height;
  check Alcotest.bool "all children of center" true
    (List.for_all (fun v -> Rooted_tree.parent tree v = 0) (List.init 19 (fun i -> i + 1)))

let sync_bfs_single_node () =
  let g = Graph.create ~n:1 [] in
  let _tree, height, _stats = Sync_bfs.run g ~root:0 in
  check Alcotest.int "height" 0 height

let sync_bfs_matches_bfs =
  QCheck.Test.make ~name:"distributed BFS depths = sequential BFS" ~count:25
    QCheck.(pair (int_bound 1000) (int_range 2 60))
    (fun (seed, n) ->
      let g = random_connected_graph seed ~n ~extra:(n / 2) in
      let tree, height, _ = Sync_bfs.run g ~root:0 in
      let dist = Bfs.distances g ~src:0 in
      height = Array.fold_left max 0 dist
      && Array.for_all (fun v -> Rooted_tree.depth tree v = dist.(v)) (Graph.vertices g))

let sync_bfs_message_complexity () =
  let g = Generators.grid ~rows:10 ~cols:10 in
  let _tree, _height, stats = Sync_bfs.run g ~root:0 in
  (* Join wave ~2 per edge + child/height/gheight ~3 per node. *)
  check Alcotest.bool "O(m) messages" true
    (stats.Simulator.messages <= (4 * Graph.m g) + (6 * Graph.n g))

(* --- Broadcast / Convergecast ------------------------------------------- *)

let broadcast_delivers () =
  let g = Generators.binary_tree ~depth:4 in
  let tree = Bfs.tree g ~root:0 in
  let info = Tree_info.of_tree g tree in
  let values, stats = Broadcast.run g info ~value:42 in
  check Alcotest.bool "everyone got it" true (Array.for_all (fun v -> v = 42) values);
  check Alcotest.bool "height+O(1) rounds" true
    (stats.Simulator.rounds <= Rooted_tree.height tree + 2)

let convergecast_sums () =
  let g = Generators.binary_tree ~depth:3 in
  let tree = Bfs.tree g ~root:0 in
  let info = Tree_info.of_tree g tree in
  let values = Array.init (Graph.n g) (fun v -> v) in
  let total, stats = Convergecast.run g info ~values ~combine:( + ) in
  check Alcotest.int "sum" (15 * 14 / 2) total;
  check Alcotest.bool "height+O(1) rounds" true
    (stats.Simulator.rounds <= Rooted_tree.height tree + 2)

let convergecast_min =
  QCheck.Test.make ~name:"convergecast computes min" ~count:25
    QCheck.(pair (int_bound 1000) (int_range 2 50))
    (fun (seed, n) ->
      let g = random_connected_graph seed ~n ~extra:3 in
      let tree = Bfs.tree g ~root:0 in
      let info = Tree_info.of_tree g tree in
      let rng = Rng.create (seed + 1) in
      let values = Array.init n (fun _ -> Rng.int rng 1000) in
      let result, _ = Convergecast.run g info ~values ~combine:min in
      result = Array.fold_left min max_int values)

(* --- Leader_election ------------------------------------------------------ *)

let leader_election_elects_max () =
  let g = Generators.grid ~rows:5 ~cols:5 in
  let leader, stats = Leader_election.run ~diameter_bound:8 g in
  check Alcotest.int "max id" 24 leader;
  check Alcotest.bool "O(D) rounds" true (stats.Simulator.rounds <= 12)

let leader_election_on_random =
  QCheck.Test.make ~name:"leader election elects the max id" ~count:20
    QCheck.(pair (int_bound 1000) (int_range 2 40))
    (fun (seed, n) ->
      let g = random_connected_graph seed ~n ~extra:(n / 3) in
      fst (Leader_election.run g) = n - 1)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ sync_bfs_matches_bfs; convergecast_min; leader_election_on_random ]

let suite =
  [
    case "simulator: ping pong" `Quick simulator_ping_pong;
    case "simulator: bandwidth enforced" `Quick simulator_enforces_bandwidth;
    case "simulator: wider bandwidth" `Quick simulator_allows_wider_bandwidth;
    case "simulator: oversized message" `Quick simulator_rejects_oversized_message;
    case "simulator: round limit" `Quick simulator_round_limit;
    case "sync bfs: path" `Quick sync_bfs_path;
    case "sync bfs: star" `Quick sync_bfs_star;
    case "sync bfs: single node" `Quick sync_bfs_single_node;
    case "sync bfs: message complexity" `Quick sync_bfs_message_complexity;
    case "broadcast: delivers" `Quick broadcast_delivers;
    case "convergecast: sums" `Quick convergecast_sums;
    case "leader election: grid" `Quick leader_election_elects_max;
  ]
  @ props
