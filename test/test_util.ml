(* Unit and property tests for Lcs_util: Rng, Stats, Table, Bitset, Pqueue. *)

open Core

let check = Alcotest.check
let case = Alcotest.test_case

(* --- Rng ------------------------------------------------------------- *)

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check Alcotest.bool "different seeds diverge" true (!same < 4)

let rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let from_child = Array.init 32 (fun _ -> Rng.bits64 child) in
  let from_parent = Array.init 32 (fun _ -> Rng.bits64 parent) in
  check Alcotest.bool "streams differ" true (from_child <> from_parent)

let rng_copy_replays () =
  let a = Rng.create 13 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  let xs = Array.init 16 (fun _ -> Rng.bits64 a) in
  let ys = Array.init 16 (fun _ -> Rng.bits64 b) in
  check Alcotest.bool "copy replays" true (xs = ys)

let rng_int_bounds () =
  let rng = Rng.create 5 in
  for bound = 1 to 40 do
    for _ = 1 to 50 do
      let v = Rng.int rng bound in
      check Alcotest.bool "in range" true (v >= 0 && v < bound)
    done
  done

let rng_int_rejects () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let rng_uniform01 () =
  let rng = Rng.create 11 in
  let total = ref 0. in
  let samples = 10_000 in
  for _ = 1 to samples do
    let u = Rng.uniform01 rng in
    check Alcotest.bool "in [0,1)" true (u >= 0. && u < 1.);
    total := !total +. u
  done;
  let mean = !total /. float_of_int samples in
  check Alcotest.bool "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.02)

let rng_permutation_is_permutation =
  QCheck.Test.make ~name:"Rng.permutation is a permutation" ~count:50
    QCheck.(pair (int_bound 1000) (int_range 1 200))
    (fun (seed, n) ->
      let p = Rng.permutation (Rng.create seed) n in
      let seen = Array.make n false in
      Array.iter (fun i -> seen.(i) <- true) p;
      Array.for_all (fun b -> b) seen)

let rng_sample_without_replacement =
  QCheck.Test.make ~name:"Rng.sample_without_replacement distinct in-range" ~count:50
    QCheck.(triple (int_bound 1000) (int_range 0 50) (int_range 50 300))
    (fun (seed, k, n) ->
      let s = Rng.sample_without_replacement (Rng.create seed) k n in
      let tbl = Hashtbl.create 16 in
      Array.length s = k
      && Array.for_all
           (fun v ->
             let fresh = not (Hashtbl.mem tbl v) in
             Hashtbl.replace tbl v ();
             fresh && v >= 0 && v < n)
           s)

(* --- Stats ------------------------------------------------------------ *)

let stats_summary () =
  let s = Stats.summarize [| 1.; 2.; 3.; 4.; 5. |] in
  check (Alcotest.float 1e-9) "mean" 3. s.Stats.mean;
  check (Alcotest.float 1e-9) "median" 3. s.Stats.median;
  check (Alcotest.float 1e-9) "min" 1. s.Stats.min;
  check (Alcotest.float 1e-9) "max" 5. s.Stats.max;
  check (Alcotest.float 1e-6) "stddev" (sqrt 2.5) s.Stats.stddev

let stats_percentile () =
  let xs = [| 10.; 20.; 30.; 40. |] in
  check (Alcotest.float 1e-9) "p0" 10. (Stats.percentile xs 0.);
  check (Alcotest.float 1e-9) "p100" 40. (Stats.percentile xs 100.);
  check (Alcotest.float 1e-9) "p50 interpolates" 25. (Stats.percentile xs 50.)

let stats_linear_fit () =
  let slope, intercept = Stats.linear_fit [| (0., 1.); (1., 3.); (2., 5.) |] in
  check (Alcotest.float 1e-9) "slope" 2. slope;
  check (Alcotest.float 1e-9) "intercept" 1. intercept

let stats_empty_raises () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (Stats.mean [||]))

(* --- Table ------------------------------------------------------------ *)

let table_renders_aligned () =
  let t = Table.create [ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "12345" ];
  let out = Table.render t in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: _ ->
      check Alcotest.int "rule matches header width" (String.length header)
        (String.length rule)
  | _ -> Alcotest.fail "missing rows");
  (* Columns: "name" padded to width 5 ("alpha"), two-space separator,
     "value" padded to width 5. *)
  check Alcotest.bool "right aligned" true
    (List.exists (fun l -> l = "b      12345") lines)

let table_arity_mismatch () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let table_fmt_float () =
  check Alcotest.string "integral" "7" (Table.fmt_float 7.);
  check Alcotest.string "fractional" "2.50" (Table.fmt_float 2.5)

(* --- Bitset ----------------------------------------------------------- *)

let bitset_basics () =
  let s = Bitset.create 100 in
  check Alcotest.int "empty" 0 (Bitset.cardinal s);
  Bitset.add s 3;
  Bitset.add s 99;
  Bitset.add s 3;
  check Alcotest.int "cardinal" 2 (Bitset.cardinal s);
  check Alcotest.bool "mem 3" true (Bitset.mem s 3);
  check Alcotest.bool "mem 4" false (Bitset.mem s 4);
  Bitset.remove s 3;
  check Alcotest.bool "removed" false (Bitset.mem s 3);
  check Alcotest.int "cardinal after remove" 1 (Bitset.cardinal s);
  check (Alcotest.list Alcotest.int) "to_list" [ 99 ] (Bitset.to_list s)

let bitset_out_of_range () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s 8)

let bitset_matches_model =
  QCheck.Test.make ~name:"Bitset behaves like a set of ints" ~count:100
    QCheck.(list (pair bool (int_bound 63)))
    (fun ops ->
      let s = Bitset.create 64 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add s i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.remove s i;
            Hashtbl.remove model i
          end)
        ops;
      Bitset.cardinal s = Hashtbl.length model
      && List.for_all (fun i -> Bitset.mem s i = Hashtbl.mem model i)
           (List.init 64 (fun i -> i)))

let bitset_union_inter () =
  let a = Bitset.of_list 32 [ 1; 2; 3 ] in
  let b = Bitset.of_list 32 [ 3; 4 ] in
  check Alcotest.int "inter" 1 (Bitset.inter_cardinal a b);
  Bitset.union_into a b;
  check Alcotest.int "union card" 4 (Bitset.cardinal a);
  check (Alcotest.list Alcotest.int) "union elements" [ 1; 2; 3; 4 ] (Bitset.to_list a)

(* --- Pqueue ----------------------------------------------------------- *)

let pqueue_orders () =
  let q = Pqueue.create () in
  Pqueue.push q ~priority:5 "e";
  Pqueue.push q ~priority:1 "a";
  Pqueue.push q ~priority:3 "c";
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "peek"
    (Some (1, "a")) (Pqueue.peek_min q);
  let order = List.init 3 (fun _ -> Pqueue.pop_min q) in
  check
    (Alcotest.list (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)))
    "pop order"
    [ Some (1, "a"); Some (3, "c"); Some (5, "e") ]
    order;
  check Alcotest.bool "drained" true (Pqueue.is_empty q)

let pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun s -> Pqueue.push q ~priority:7 s) [ "first"; "second"; "third" ];
  let pop () = match Pqueue.pop_min q with Some (_, v) -> v | None -> "?" in
  (* Bind sequentially: list literals evaluate right-to-left in OCaml. *)
  let first = pop () in
  let second = pop () in
  let third = pop () in
  check (Alcotest.list Alcotest.string) "FIFO among ties"
    [ "first"; "second"; "third" ]
    [ first; second; third ]

let pqueue_matches_sort =
  QCheck.Test.make ~name:"Pqueue drains in sorted order" ~count:100
    QCheck.(list (int_bound 1000))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q ~priority:p i) priorities;
      let rec drain acc =
        match Pqueue.pop_min q with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare priorities)

let rng_bernoulli_extremes () =
  let rng = Rng.create 3 in
  for _ = 1 to 20 do
    check Alcotest.bool "p=0 never" false (Rng.bernoulli rng 0.);
    check Alcotest.bool "p=1 always" true (Rng.bernoulli rng 1.)
  done;
  let heads = ref 0 in
  for _ = 1 to 2000 do
    if Rng.bool rng then incr heads
  done;
  check Alcotest.bool "fair coin" true (abs (!heads - 1000) < 120)

let rng_choose () =
  let rng = Rng.create 4 in
  check Alcotest.int "singleton" 7 (Rng.choose rng [| 7 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng ([||] : int array)))

let stats_of_ints_and_ratios () =
  check Alcotest.bool "of_ints" true (Stats.of_ints [| 1; 2 |] = [| 1.; 2. |]);
  check Alcotest.bool "ratio series" true
    (Stats.ratio_series [| (2., 6.); (4., 4.) |] = [| 3.; 1. |])

let bitset_copy_and_clear () =
  let a = Bitset.of_list 16 [ 1; 5 ] in
  let b = Bitset.copy a in
  Bitset.add b 9;
  check Alcotest.int "copy isolated" 2 (Bitset.cardinal a);
  check Alcotest.int "copy grew" 3 (Bitset.cardinal b);
  Bitset.clear b;
  check Alcotest.int "cleared" 0 (Bitset.cardinal b);
  check Alcotest.bool "fold sums" true (Bitset.fold ( + ) a 0 = 6)

let table_int_rows () =
  let t = Table.create [ ("a", Table.Right); ("b", Table.Right) ] in
  Table.add_int_row t [ 1; 2 ];
  check Alcotest.bool "renders ints" true
    (String.length (Table.render t) > 0)

(* --- Vec ------------------------------------------------------------- *)

let vec_push_get () =
  let v = Vec.create () in
  check Alcotest.bool "fresh is empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * 3)
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  for i = 0 to 99 do
    check Alcotest.int "get" (i * 3) (Vec.get v i)
  done;
  Vec.set v 50 (-1);
  check Alcotest.int "set/get" (-1) (Vec.get v 50)

let vec_clear_reuses_storage () =
  let v = Vec.create () in
  for i = 0 to 999 do
    Vec.push v i
  done;
  let cap = Vec.capacity v in
  check Alcotest.bool "grew" true (cap >= 1000);
  (* Refill after clear: same storage, no growth. *)
  for _ = 1 to 5 do
    Vec.clear v;
    check Alcotest.int "cleared" 0 (Vec.length v);
    for i = 0 to 999 do
      Vec.push v (i + 7)
    done;
    check Alcotest.int "capacity stable across reuse" cap (Vec.capacity v);
    check Alcotest.int "refilled" (7 + 999) (Vec.get v 999)
  done;
  Vec.reset v;
  check Alcotest.int "reset drops storage" 0 (Vec.capacity v)

let vec_growth_and_capacity_hint () =
  let v = Vec.create ~capacity:32 () in
  check Alcotest.int "no storage before first push" 0 (Vec.capacity v);
  Vec.push v 1;
  check Alcotest.int "hint honored" 32 (Vec.capacity v);
  for i = 2 to 100 do
    Vec.push v i
  done;
  check Alcotest.int "doubling growth" 128 (Vec.capacity v);
  check Alcotest.int "contents intact" 100 (Vec.get v 99)

let vec_truncate_and_iter () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5 ] in
  Vec.truncate v 3;
  check (Alcotest.list Alcotest.int) "truncate" [ 1; 2; 3 ] (Vec.to_list v);
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  check Alcotest.int "iteri count" 3 (List.length !seen);
  check Alcotest.int "fold" 6 (Vec.fold_left ( + ) 0 v);
  check Alcotest.bool "to_array" true (Vec.to_array v = [| 1; 2; 3 |]);
  Alcotest.check_raises "truncate too long" (Invalid_argument "Vec.truncate: bad length")
    (fun () -> Vec.truncate v 4)

let vec_bounds_checked () =
  let v = Vec.of_list [ 10 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "get negative" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v (-1)));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set: index out of bounds")
    (fun () -> Vec.set v 1 0)

(* Model check: a Vec subjected to a random push/clear/truncate/set script
   always agrees with the same script run against a plain list. *)
let vec_matches_model =
  QCheck.Test.make ~name:"Vec = list model" ~count:200
    QCheck.(small_list (pair (int_bound 3) small_int))
    (fun script ->
      let v = Vec.create () in
      let model = ref [] in
      List.iter
        (fun (op, x) ->
          match op with
          | 0 | 3 ->
              Vec.push v x;
              model := !model @ [ x ]
          | 1 ->
              Vec.clear v;
              model := []
          | 2 ->
              let n = List.length !model in
              if n > 0 then begin
                let keep = x mod n in
                Vec.truncate v keep;
                model := List.filteri (fun i _ -> i < keep) !model;
                if keep > 0 then begin
                  Vec.set v (keep - 1) (x + 1);
                  model := List.mapi (fun i y -> if i = keep - 1 then x + 1 else y) !model
                end
              end
          | _ -> assert false)
        script;
      Vec.to_list v = !model && Vec.length v = List.length !model)

let props = List.map QCheck_alcotest.to_alcotest
    [
      rng_permutation_is_permutation;
      rng_sample_without_replacement;
      bitset_matches_model;
      pqueue_matches_sort;
      vec_matches_model;
    ]

let suite =
  [
    case "rng: deterministic" `Quick rng_deterministic;
    case "rng: seed sensitivity" `Quick rng_seed_sensitivity;
    case "rng: split independent" `Quick rng_split_independent;
    case "rng: copy replays" `Quick rng_copy_replays;
    case "rng: int bounds" `Quick rng_int_bounds;
    case "rng: int rejects bad bound" `Quick rng_int_rejects;
    case "rng: uniform01 mean" `Quick rng_uniform01;
    case "stats: summary" `Quick stats_summary;
    case "stats: percentile" `Quick stats_percentile;
    case "stats: linear fit" `Quick stats_linear_fit;
    case "stats: empty raises" `Quick stats_empty_raises;
    case "table: alignment" `Quick table_renders_aligned;
    case "table: arity" `Quick table_arity_mismatch;
    case "table: float formatting" `Quick table_fmt_float;
    case "bitset: basics" `Quick bitset_basics;
    case "bitset: out of range" `Quick bitset_out_of_range;
    case "bitset: union/inter" `Quick bitset_union_inter;
    case "pqueue: ordering" `Quick pqueue_orders;
    case "pqueue: FIFO ties" `Quick pqueue_fifo_ties;
    case "rng: bernoulli extremes + fair coin" `Quick rng_bernoulli_extremes;
    case "rng: choose" `Quick rng_choose;
    case "stats: of_ints/ratios" `Quick stats_of_ints_and_ratios;
    case "bitset: copy/clear/fold" `Quick bitset_copy_and_clear;
    case "table: int rows" `Quick table_int_rows;
    case "vec: push/get/set" `Quick vec_push_get;
    case "vec: clear reuses storage" `Quick vec_clear_reuses_storage;
    case "vec: growth + capacity hint" `Quick vec_growth_and_capacity_hint;
    case "vec: truncate/iter/fold" `Quick vec_truncate_and_iter;
    case "vec: bounds checked" `Quick vec_bounds_checked;
  ]
  @ props
