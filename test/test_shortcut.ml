(* Tests for the shortcut machinery: Theorem 3.1 construction and its
   invariants, boosting, the baseline, certificates, minor-density bounds,
   and the distributed construction. *)

open Core

let check = Alcotest.check
let case = Alcotest.test_case

let random_connected_graph seed ~n ~extra =
  let rng = Rng.create seed in
  let b = Builder.create ~n in
  for v = 1 to n - 1 do
    Builder.add_edge b (Rng.int rng v) v
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra && !attempts < 20 * extra do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Builder.mem_edge b u v) then begin
      Builder.add_edge b u v;
      incr added
    end
  done;
  Builder.graph b

let random_setup seed ~n ~extra ~parts =
  let g = random_connected_graph seed ~n ~extra in
  let parts = max 1 (min parts n) in
  let partition = Partition.voronoi g (Rng.create (seed + 17)) ~parts in
  let tree = Bfs.tree g ~root:0 in
  (g, partition, tree)

(* --- Shortcut type ------------------------------------------------------ *)

let shortcut_create_and_union () =
  let g = Generators.grid ~rows:3 ~cols:3 in
  let p = Partition.grid_rows g ~rows:3 ~cols:3 in
  let a = Shortcut.create ~covered:[| true; false; false |] p [| [ 0 ]; []; [] |] in
  let b = Shortcut.create ~covered:[| false; true; true |] p [| [ 0; 1 ]; [ 2 ]; [] |] in
  check Alcotest.bool "a is partial" true (Shortcut.is_partial a);
  let u = Shortcut.union a b in
  check Alcotest.bool "union is full" false (Shortcut.is_partial u);
  check (Alcotest.list Alcotest.int) "edges merged dedup" [ 0; 1 ]
    (List.sort compare (Shortcut.edges u 0));
  check Alcotest.int "load" 3 (Shortcut.total_edge_occurrences u)

let shortcut_rejects_bad_edges () =
  let g = Generators.path 3 in
  let p = Partition.whole g in
  Alcotest.check_raises "edge range"
    (Invalid_argument "Shortcut.create: edge id out of range") (fun () ->
      ignore (Shortcut.create p [| [ 99 ] |]))

(* --- Quality ------------------------------------------------------------ *)

let quality_wheel () =
  (* Wheel: rim as one part. Without shortcut the dilation is the rim
     diameter; with the spokes' tree edges it collapses to O(1). *)
  let n = 32 in
  let g = Generators.wheel n in
  let p = Partition.of_parts g [ List.init (n - 1) (fun i -> i + 1) ] in
  let empty = Shortcut.empty p in
  let r_empty = Quality.measure empty in
  check Alcotest.int "bare rim dilation" ((n - 1) / 2) r_empty.Quality.dilation;
  (* Give the part every spoke edge: dilation falls to <= 2. *)
  let spokes = ref [] in
  Graph.iter_adj g 0 (fun _w e -> spokes := e :: !spokes);
  let sc = Shortcut.create p [| !spokes |] in
  let r = Quality.measure sc in
  check Alcotest.int "shortcut dilation" 2 r.Quality.dilation;
  check Alcotest.int "congestion 1" 1 r.Quality.congestion

let quality_congestion_counts () =
  let g = Generators.path 4 in
  let p = Partition.of_parts g [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  let sc = Shortcut.create p [| [ 0; 1 ]; [ 1 ]; [ 1; 2 ] |] in
  let load = Quality.edge_load sc in
  check Alcotest.int "edge 1 shared by 3" 3 load.(1);
  check Alcotest.int "congestion" 3 (Quality.congestion sc)

let quality_blocks () =
  let g = Generators.path 7 in
  let p = Partition.of_parts g [ [ 0; 1 ]; [ 3 ]; [ 5; 6 ] ] in
  (* Definition 2.3 counts components of (P_i ∪ V(H_i), H_i) using H_i
     edges only: part {0,1} with the far edge 4 (vertices 4-5) splits into
     {0}, {1}, {4,5} — three blocks. A shortcut-less singleton is one
     block. *)
  let sc = Shortcut.create p [| [ 4 ]; []; [] |] in
  check Alcotest.int "three blocks" 3 (Quality.part_blocks sc 0);
  check Alcotest.int "single block" 1 (Quality.part_blocks sc 1);
  (* The part's own tree edge (edge 0 joins vertices 0-1) merges the two
     member blocks back into one. *)
  let sc2 = Shortcut.create p [| [ 0; 4 ]; []; [] |] in
  check Alcotest.int "merged member block" 2 (Quality.part_blocks sc2 0)

(* --- Construct: Theorem 3.1 invariants ---------------------------------- *)

let construct_grid_rows () =
  let rows = 8 and cols = 8 in
  let g = Generators.grid ~rows ~cols in
  let p = Partition.grid_rows g ~rows ~cols in
  let tree = Bfs.tree g ~root:0 in
  let result, delta = Construct.auto p ~tree in
  check Alcotest.bool "succeeded" true (Construct.succeeded result);
  (* Grids are planar: delta accepted must stay small. *)
  check Alcotest.bool "delta small" true (delta <= 4);
  let r = Quality.measure result.Construct.shortcut in
  check Alcotest.bool "congestion within threshold" true
    (r.Quality.congestion <= result.Construct.threshold);
  check Alcotest.bool "blocks within budget+1" true
    (r.Quality.max_block_number <= result.Construct.block_budget + 1)

let construct_invariants =
  QCheck.Test.make ~name:"Thm 3.1 invariants on random graphs" ~count:25
    QCheck.(quad (int_bound 1000) (int_range 6 60) (int_range 0 40) (int_range 1 10))
    (fun (seed, n, extra, parts) ->
      let _g, partition, tree = random_setup seed ~n ~extra ~parts in
      let result, _delta = Construct.auto partition ~tree in
      let d = max 1 (Rooted_tree.height tree) in
      let r = Quality.measure result.Construct.shortcut in
      let blocks_ok =
        (* block number of covered part i is at most blame degree + 1 *)
        Array.for_all (fun b -> b < 0 || b <= result.Construct.block_budget + 1)
          r.Quality.per_part_blocks
      in
      let dilation_ok =
        (* Observation 2.6: dilation <= blocks * (2D+1) *)
        Array.for_all2
          (fun dil blocks -> dil < 0 || dil <= blocks * ((2 * d) + 1))
          r.Quality.per_part_dilation r.Quality.per_part_blocks
      in
      Construct.succeeded result
      && r.Quality.congestion <= result.Construct.threshold
      && blocks_ok && dilation_ok)

let construct_blame_degree_matches_selection =
  QCheck.Test.make ~name:"selection = blame degree <= budget" ~count:25
    QCheck.(triple (int_bound 1000) (int_range 6 50) (int_range 1 8))
    (fun (seed, n, parts) ->
      let _g, partition, tree = random_setup seed ~n ~extra:(n / 3) ~parts in
      let result = Construct.for_delta partition ~tree ~delta:1 in
      Array.for_all2
        (fun selected degree -> selected = (degree <= result.Construct.block_budget))
        result.Construct.selected result.Construct.blame_degree)

let construct_no_overcongestion_when_few_parts () =
  (* threshold > k means no edge can ever be overcongested. *)
  let g = Generators.grid ~rows:5 ~cols:5 in
  let p = Partition.grid_rows g ~rows:5 ~cols:5 in
  let tree = Bfs.tree g ~root:0 in
  let result = Construct.run p ~tree ~threshold:10 ~block_budget:0 in
  check Alcotest.int "no overcongested edges" 0 result.Construct.overcongested_count;
  check Alcotest.int "all selected" 5 result.Construct.selected_count

let construct_wheel_spokes () =
  (* One rim part in a wheel: the BFS tree from the hub is the star of
     spokes; H_1 should include rim-ancestor spokes and give dilation <= 3,
     congestion 1. *)
  let n = 40 in
  let g = Generators.wheel n in
  let p = Partition.of_parts g [ List.init (n - 1) (fun i -> i + 1) ] in
  let tree = Bfs.tree g ~root:0 in
  let result, _delta = Construct.auto p ~tree in
  let r = Quality.measure result.Construct.shortcut in
  check Alcotest.bool "dilation tiny" true (r.Quality.dilation <= 3);
  check Alcotest.int "congestion" 1 r.Quality.congestion

let construct_trace_records_blame () =
  let rows = 16 and cols = 4 in
  let g = Generators.grid ~rows ~cols in
  let p = Partition.grid_rows g ~rows ~cols in
  let tree = Bfs.tree g ~root:0 in
  (* Tiny threshold forces overcongestion so blame is non-trivial. *)
  let result = Construct.run ~record_blame:true p ~tree ~threshold:2 ~block_budget:2 in
  check Alcotest.bool "blame recorded" true
    (List.length result.Construct.blame = result.Construct.overcongested_count);
  List.iter
    (fun b ->
      check Alcotest.bool "every blame edge lists >= threshold parts" true
        (Array.length b.Construct.parts >= 2);
      (* Representatives belong to their parts. *)
      Array.iter
        (fun (part, rep) ->
          check Alcotest.int "rep in part" part (Partition.part_of p rep))
        b.Construct.parts)
    result.Construct.blame

let blame_reps_are_minimal_depth =
  QCheck.Test.make ~name:"blame representatives are min-depth and clean-path" ~count:20
    QCheck.(triple (int_bound 1000) (int_range 8 50) (int_range 2 10))
    (fun (seed, n, parts) ->
      let _g, partition, tree = random_setup seed ~n ~extra:(n / 3) ~parts in
      let result =
        Construct.run ~record_blame:true partition ~tree ~threshold:2 ~block_budget:0
      in
      List.for_all
        (fun b ->
          Array.for_all
            (fun (part, rep) ->
              (* rep lies strictly below v_e... *)
              Rooted_tree.is_ancestor tree ~ancestor:b.Construct.lower rep
              && Partition.part_of partition rep = part
              (* ...and the tree path from v_e down to rep meets the part
                 only at rep (the min-depth property the certificate's
                 survival argument needs). *)
              &&
              let rec clean v =
                if v = b.Construct.lower then true
                else if v <> rep && Partition.part_of partition v = part then false
                else clean (Rooted_tree.parent tree v)
              in
              clean rep)
            b.Construct.parts)
        result.Construct.blame)

(* --- Boost --------------------------------------------------------------- *)

let boost_covers_everything =
  QCheck.Test.make ~name:"boosting yields a full shortcut" ~count:20
    QCheck.(triple (int_bound 1000) (int_range 6 50) (int_range 1 10))
    (fun (seed, n, parts) ->
      let _g, partition, tree = random_setup seed ~n ~extra:(n / 4) ~parts in
      let b = Boost.full partition ~tree in
      let k = Partition.k partition in
      (not (Shortcut.is_partial b.Boost.shortcut))
      && b.Boost.iterations <= int_of_float (Float.ceil (log (float_of_int (max 2 k)) /. log 2.)) + 1
      &&
      let r = Quality.measure b.Boost.shortcut in
      r.Quality.congestion <= b.Boost.threshold * b.Boost.iterations)

let boost_iteration_counts () =
  let g = Generators.grid ~rows:12 ~cols:12 in
  let p = Partition.grid_rows g ~rows:12 ~cols:12 in
  let tree = Bfs.tree g ~root:0 in
  let b = Boost.full p ~tree in
  check Alcotest.bool "full" false (Shortcut.is_partial b.Boost.shortcut);
  check Alcotest.bool "log iterations" true (b.Boost.iterations <= 5);
  check Alcotest.int "coverage sums to k" 12
    (List.fold_left ( + ) 0 b.Boost.per_iteration_covered)

(* --- Baseline ------------------------------------------------------------ *)

let baseline_thresholding () =
  let rows = 9 and cols = 9 in
  let g = Generators.grid ~rows ~cols in
  let p = Partition.grid_rows g ~rows ~cols in
  let tree = Bfs.tree g ~root:0 in
  let b = Baseline.bfs_tree p ~tree in
  (* Each row has 9 = sqrt(81) vertices: none strictly exceeds the cutoff. *)
  check Alcotest.int "no large parts" 0 b.Baseline.large_parts;
  let b2 = Baseline.bfs_tree ~threshold:4 p ~tree in
  check Alcotest.int "all large now" rows b2.Baseline.large_parts;
  let r = Quality.measure b2.Baseline.shortcut in
  check Alcotest.bool "congestion <= #large parts" true (r.Quality.congestion <= rows);
  check Alcotest.bool "dilation <= 2D" true
    (r.Quality.dilation <= 2 * Rooted_tree.height tree)

(* --- Certificate ---------------------------------------------------------- *)

(* At the paper's generous constants (c = 8δD), failure — and hence a
   certificate — requires instances far above unit-test scale: a K_24 at
   depth 1 legitimately admits perfect shortcuts at delta = 1 (every tree
   edge serves one singleton part). To exercise case (II)'s machinery we
   force failure with a sub-theorem threshold and check the extractor's
   mechanics: the sampled bipartite graph must be a genuine, verified minor
   of G. The theorem-grade density statement is measured at scale by
   experiment E11. *)
let certificate_mechanics_on_grid () =
  let rows = 16 and cols = 16 in
  let g = Generators.grid ~rows ~cols in
  let p = Partition.grid_rows g ~rows ~cols in
  let tree = Bfs.tree g ~root:0 in
  let result = Construct.run ~record_blame:true p ~tree ~threshold:2 ~block_budget:0 in
  check Alcotest.bool "forced failure" false (Construct.succeeded result);
  check Alcotest.bool "blame non-empty" true (result.Construct.blame <> []);
  let cert = Certificate.best_effort ~max_attempts:128 (Rng.create 5) result in
  check Alcotest.bool "verified minor" true
    (match Minor.verify g cert.Certificate.model with Ok () -> true | Error _ -> false);
  check Alcotest.bool "density positive" true (cert.Certificate.density > 0.);
  (* Any minor's density lower-bounds δ(G) < 3 (planarity). *)
  check Alcotest.bool "density below planar bound" true (cert.Certificate.density < 3.)

let certificate_extract_with_target () =
  let rows = 16 and cols = 16 in
  let g = Generators.grid ~rows ~cols in
  let p = Partition.grid_rows g ~rows ~cols in
  let tree = Bfs.tree g ~root:0 in
  let result = Construct.run ~record_blame:true p ~tree ~threshold:2 ~block_budget:0 in
  (* Self-calibrating target: half of an achievable density; extract must
     retry until it beats it. *)
  let probe = Certificate.best_effort ~max_attempts:64 (Rng.create 3) result in
  let target = probe.Certificate.density /. 2. in
  match Certificate.extract ~target ~max_attempts:2000 (Rng.create 7) result with
  | None -> Alcotest.failf "no certificate above target %.3f" target
  | Some cert ->
      check Alcotest.bool "density above target" true (cert.Certificate.density > target)

let run_certifying_both_ways () =
  (* Success: a grid at delta 3 (>= its true density) yields a shortcut. *)
  let g = Generators.grid ~rows:8 ~cols:8 in
  let p = Partition.grid_rows g ~rows:8 ~cols:8 in
  let tree = Bfs.tree g ~root:0 in
  (match Certificate.run_certifying (Rng.create 3) p ~tree ~delta:3 with
  | Certificate.Shortcut result ->
      check Alcotest.bool "succeeded" true (Construct.succeeded result)
  | Certificate.Dense_minor _ -> Alcotest.fail "grid at delta 3 must succeed");
  (* The failure path of the API is exercised through the forced-threshold
     tests above; at the paper's own constants, failure needs instances
     beyond unit scale (Lemma 3.2). *)
  ()

let certificate_requires_blame () =
  let rows = 8 and cols = 8 in
  let g = Generators.grid ~rows ~cols in
  let p = Partition.grid_rows g ~rows ~cols in
  let tree = Bfs.tree g ~root:0 in
  let result = Construct.run p ~tree ~threshold:2 ~block_budget:0 in
  if result.Construct.overcongested_count > 0 then
    Alcotest.check_raises "needs blame"
      (Invalid_argument
         "Certificate: construct result lacks blame (use ~record_blame:true)")
      (fun () -> ignore (Certificate.extract (Rng.create 1) result))
  else Alcotest.fail "expected overcongested edges at threshold 2"

let certificate_best_effort_density =
  QCheck.Test.make ~name:"best-effort certificates verify on random setups" ~count:10
    QCheck.(triple (int_bound 1000) (int_range 16 48) (int_range 4 12))
    (fun (seed, n, parts) ->
      let _g, partition, tree = random_setup seed ~n ~extra:(n / 2) ~parts in
      let result =
        Construct.run ~record_blame:true partition ~tree ~threshold:2 ~block_budget:0
      in
      if result.Construct.overcongested_count = 0 then true
      else
        let host = Partition.graph partition in
        let cert = Certificate.best_effort (Rng.create seed) result in
        (match Minor.verify host cert.Certificate.model with
        | Ok () -> true
        | Error _ -> false))

(* --- Minor density --------------------------------------------------------- *)

let minor_density_partition_bound () =
  let blocks = 7 and side = 4 in
  let g = Generators.clique_of_grids ~blocks ~side in
  let p = Generators.block_partition ~blocks ~side g in
  check (Alcotest.float 1e-9) "contracting blocks gives K_r density"
    (Minor_density.complete_lower blocks)
    (Minor_density.partition_lower g p)

let minor_density_greedy_on_grid () =
  let g = Generators.grid ~rows:8 ~cols:8 in
  let lb = Minor_density.greedy_lower (Rng.create 3) ~restarts:4 g in
  check Alcotest.bool "lower bound positive" true (lb >= Graph.density g);
  check Alcotest.bool "respects planar upper bound" true (lb < Minor_density.planar_upper)

let minor_density_greedy_finds_density () =
  let g = Generators.complete 12 in
  let lb = Minor_density.greedy_lower (Rng.create 3) g in
  check Alcotest.bool "at least trivial density" true
    (lb >= Minor_density.trivial_lower g)

(* --- Distributed ------------------------------------------------------------ *)

let distributed_deterministic_matches_centralized =
  QCheck.Test.make ~name:"deterministic wave O = centralized O" ~count:12
    QCheck.(triple (int_bound 1000) (int_range 6 40) (int_range 1 6))
    (fun (seed, n, parts) ->
      let g, partition, _ = random_setup seed ~n ~extra:(n / 4) ~parts in
      let tree, height, _stats = Sync_bfs.run g ~root:0 in
      let info = Tree_info.of_tree g tree in
      let d = max 1 height in
      let threshold = max 2 (2 * d) in
      let over_dist, _ =
        Distributed.detection_wave ~variant:Distributed.Deterministic ~threshold
          partition info
      in
      let central = Construct.run partition ~tree ~threshold ~block_budget:8 in
      let m = Graph.m g in
      let same = ref true in
      for e = 0 to m - 1 do
        if Bitset.mem over_dist e <> Bitset.mem central.Construct.overcongested e then
          same := false
      done;
      !same)

let distributed_construct_grid () =
  let rows = 8 and cols = 8 in
  let g = Generators.grid ~rows ~cols in
  let p = Partition.grid_rows g ~rows ~cols in
  let outcome = Distributed.construct ~seed:3 p ~root:0 in
  check Alcotest.bool "succeeded" true (Construct.succeeded outcome.Distributed.result);
  check Alcotest.bool "rounds positive" true (outcome.Distributed.wave_rounds > 0);
  check Alcotest.bool "few guesses" true (outcome.Distributed.guesses <= 6);
  (* Messages stay near-linear in m. *)
  let m = Graph.m g in
  let r = outcome.Distributed.wave_messages in
  check Alcotest.bool "messages Õ(m)" true (r <= 200 * m)

let distributed_randomized_selects_half =
  QCheck.Test.make ~name:"randomized construct covers >= half" ~count:6
    QCheck.(triple (int_bound 1000) (int_range 8 30) (int_range 2 6))
    (fun (seed, n, parts) ->
      let _g, partition, _tree = random_setup seed ~n ~extra:(n / 4) ~parts in
      let outcome = Distributed.construct ~seed:(seed + 1) partition ~root:0 in
      Construct.succeeded outcome.Distributed.result
      && outcome.Distributed.wave_rounds > 0)

let distributed_deterministic_construct () =
  let rows = 6 and cols = 6 in
  let g = Generators.grid ~rows ~cols in
  let p = Partition.grid_rows g ~rows ~cols in
  let outcome =
    Distributed.construct ~variant:Distributed.Deterministic p ~root:0
  in
  check Alcotest.bool "succeeded" true (Construct.succeeded outcome.Distributed.result);
  let r = Quality.measure outcome.Distributed.result.Construct.shortcut in
  check Alcotest.bool "congestion <= threshold" true
    (r.Quality.congestion <= outcome.Distributed.threshold)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      construct_invariants;
      construct_blame_degree_matches_selection;
      blame_reps_are_minimal_depth;
      boost_covers_everything;
      certificate_best_effort_density;
      distributed_deterministic_matches_centralized;
      distributed_randomized_selects_half;
    ]

let suite =
  [
    case "shortcut: create/union" `Quick shortcut_create_and_union;
    case "shortcut: rejects bad edges" `Quick shortcut_rejects_bad_edges;
    case "quality: wheel" `Quick quality_wheel;
    case "quality: congestion counts" `Quick quality_congestion_counts;
    case "quality: blocks" `Quick quality_blocks;
    case "construct: grid rows" `Quick construct_grid_rows;
    case "construct: no overcongestion when few parts" `Quick
      construct_no_overcongestion_when_few_parts;
    case "construct: wheel spokes" `Quick construct_wheel_spokes;
    case "construct: blame trace" `Quick construct_trace_records_blame;
    case "boost: iteration counts" `Quick boost_iteration_counts;
    case "baseline: thresholding" `Quick baseline_thresholding;
    case "certificate: mechanics on grid" `Quick certificate_mechanics_on_grid;
    case "certificate: extract with target" `Quick certificate_extract_with_target;
    case "certificate: certifying runner" `Quick run_certifying_both_ways;
    case "certificate: requires blame" `Quick certificate_requires_blame;
    case "minor density: partition bound" `Quick minor_density_partition_bound;
    case "minor density: greedy on grid" `Quick minor_density_greedy_on_grid;
    case "minor density: greedy on clique" `Quick minor_density_greedy_finds_density;
    case "distributed: construct on grid" `Quick distributed_construct_grid;
    case "distributed: deterministic construct" `Quick distributed_deterministic_construct;
  ]
  @ props
