(* Benchmark harness: one Bechamel micro-benchmark per experiment kernel
   (E1..E13), followed by the full experiment tables — so a single
   `dune exec bench/main.exe` regenerates every table and figure of the
   reproduction together with the kernels' timing.

   Each kernel is the hot inner piece of its experiment at a fixed,
   bench-friendly size; the sweeps live in lib/experiments. *)

open Core
open Bechamel
open Toolkit

(* --- pre-built inputs (construction work happens outside the timers) --- *)

let grid24 = Generators.grid ~rows:24 ~cols:24
let grid24_rows = Partition.grid_rows grid24 ~rows:24 ~cols:24
let grid24_tree = Bfs.tree grid24 ~root:0

let lbg = Lower_bound_graph.create ~delta':5 ~d':30
let lbg_tree = Bfs.tree lbg.Lower_bound_graph.graph ~root:0

let grid16 = Generators.grid ~rows:16 ~cols:16
let grid16_voro = Partition.voronoi grid16 (Rng.create 42) ~parts:32
let grid16_rows = Partition.grid_rows grid16 ~rows:16 ~cols:16
let grid16_tree = Bfs.tree grid16 ~root:0
let grid16_shortcut = (Boost.full grid16_rows ~tree:grid16_tree).Boost.shortcut
let grid16_values = Array.init (Graph.n grid16) (fun v -> (v * 131) mod 65_521)

let clique86 = Generators.clique_of_grids ~blocks:8 ~side:6
let clique86_parts = Generators.block_partition ~blocks:8 ~side:6 clique86
let clique86_tree = Bfs.tree clique86 ~root:0

let ktree = Generators.k_tree (Rng.create 7) ~k:8 ~n:600
let ktree_parts = Partition.voronoi ktree (Rng.create 8) ~parts:20
let ktree_tree = Bfs.tree ktree ~root:0

let grid12 = Generators.grid ~rows:12 ~cols:12
let grid12_rows = Partition.grid_rows grid12 ~rows:12 ~cols:12

let grid10 = Generators.grid ~rows:10 ~cols:10
let grid10_rows = Partition.grid_rows grid10 ~rows:10 ~cols:10
let grid10_tree = Bfs.tree grid10 ~root:0
let grid10_weights = Weights.random_distinct (Rng.create 5) grid10

let grid8 = Generators.grid ~rows:8 ~cols:8
let grid8_kept =
  let rng = Rng.create 11 in
  Array.init (Graph.m grid8) (fun _ -> Rng.bernoulli rng 0.7)

let wheel256 = Generators.wheel 256
let wheel256_parts =
  Partition.of_parts wheel256 [ List.init 255 (fun i -> i + 1) ]
let wheel256_tree = Bfs.tree wheel256 ~root:0
let wheel256_shortcut = (Boost.full wheel256_parts ~tree:wheel256_tree).Boost.shortcut
let wheel256_values = Array.init 256 (fun v -> (v * 37) mod 1009)

let grid16_failed =
  Construct.run ~record_blame:true grid16_rows ~tree:grid16_tree ~threshold:2
    ~block_budget:0

let grid32 = Generators.grid ~rows:32 ~cols:32
let grid32_rows = Partition.grid_rows grid32 ~rows:32 ~cols:32
let grid32_tree = Bfs.tree grid32 ~root:0

(* --- the kernels ------------------------------------------------------- *)

let tests =
  [
    Test.make ~name:"e1_thm31_grid" (Staged.stage (fun () ->
        ignore (Construct.auto grid24_rows ~tree:grid24_tree)));
    Test.make ~name:"e2_lower_bound" (Staged.stage (fun () ->
        ignore (Boost.full lbg.Lower_bound_graph.parts ~tree:lbg_tree)));
    Test.make ~name:"e3_boosting" (Staged.stage (fun () ->
        ignore (Boost.full grid16_voro ~tree:grid16_tree)));
    Test.make ~name:"e4_genus" (Staged.stage (fun () ->
        ignore (Construct.auto clique86_parts ~tree:clique86_tree)));
    Test.make ~name:"e5_treewidth" (Staged.stage (fun () ->
        ignore (Construct.auto ktree_parts ~tree:ktree_tree)));
    Test.make ~name:"e6_distributed" (Staged.stage (fun () ->
        ignore (Distributed.construct ~seed:3 grid12_rows ~root:0)));
    Test.make ~name:"e7_partwise" (Staged.stage (fun () ->
        ignore
          (Aggregate.minimum (Rng.create 9) grid16_shortcut ~values:grid16_values)));
    Test.make ~name:"e8_mst" (Staged.stage (fun () ->
        ignore (Mst.boruvka ~seed:6 grid10_weights)));
    Test.make ~name:"e9_mincut_probe" (Staged.stage (fun () ->
        ignore
          (Connectivity.components ~seed:12 grid8 ~keep:(fun e -> grid8_kept.(e)))));
    Test.make ~name:"e10_wheel" (Staged.stage (fun () ->
        ignore
          (Aggregate.minimum (Rng.create 10) wheel256_shortcut
             ~values:wheel256_values)));
    Test.make ~name:"e11_certificate" (Staged.stage (fun () ->
        ignore (Certificate.best_effort ~max_attempts:8 (Rng.create 13) grid16_failed)));
    Test.make ~name:"e12_trace" (Staged.stage (fun () ->
        ignore
          (Construct.run ~record_blame:true grid10_rows ~tree:grid10_tree
             ~threshold:3 ~block_budget:1)));
    Test.make ~name:"e13_baseline" (Staged.stage (fun () ->
        let b = Baseline.bfs_tree grid32_rows ~tree:grid32_tree in
        ignore (Quality.congestion b.Baseline.shortcut)));
    Test.make ~name:"e14_schedule" (Staged.stage (fun () ->
        ignore
          (Packet_router.route ~policy:Schedule.Fifo (Rng.create 14) grid16_shortcut
             ~values:grid16_values)));
    Test.make ~name:"e15_threshold" (Staged.stage (fun () ->
        ignore (Construct.run grid16_rows ~tree:grid16_tree ~threshold:8 ~block_budget:0)));
    Test.make ~name:"e16_engines" (Staged.stage (fun () ->
        ignore (Tree_router.sum (Rng.create 16) grid16_shortcut ~values:grid16_values)));
    Test.make ~name:"e17_sim_pa" (Staged.stage (fun () ->
        ignore
          (Sim_aggregate.minimum (Rng.create 17) grid16_shortcut ~values:grid16_values)));
    Test.make ~name:"e18_sssp" (Staged.stage (fun () ->
        ignore (Sssp.bellman_ford grid10_weights ~src:0)));
  ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"lcs" ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"Experiment kernels (Bechamel, monotonic clock)"
      [ ("kernel", Table.Left); ("time/run", Table.Right); ("r^2", Table.Right) ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let time_ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | _ -> Float.nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with Some r -> r | None -> Float.nan
      in
      rows := (name, time_ns, r2) :: !rows)
    results;
  let human ns =
    if Float.is_nan ns then "n/a"
    else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, ns, r2) ->
      Table.add_row table [ name; human ns; Printf.sprintf "%.3f" r2 ])
    (List.sort compare !rows);
  Table.print table;
  List.sort compare !rows

(* Machine-readable timings next to the ASCII table, so the kernels' perf
   trajectory can be tracked across commits by diffing JSON instead of
   re-reading tables. *)
let write_json path rows =
  let doc =
    Json.Obj
      [
        ("schema", Json.String "lcs-bench-kernels/1");
        ("unit", Json.String "ns/run");
        ( "kernels",
          Json.Obj
            (List.map
               (fun (name, ns, r2) ->
                 ( name,
                   Json.Obj
                     [ ("time_ns", Json.Float ns); ("r_square", Json.Float r2) ] ))
               rows) );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  (* main.exe [--no-tables] [PATH]: kernels always run and land in the
     JSON report (default BENCH_kernels.json at the repo root, where CI
     picks it up); --no-tables skips the experiment-table sweep, which
     dominates the wall time and has its own harness. *)
  let json_path = ref "BENCH_kernels.json" in
  let tables = ref true in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--no-tables" -> tables := false
        | path -> json_path := path)
    Sys.argv;
  let rows = benchmark () in
  write_json !json_path rows;
  if !tables then begin
    print_newline ();
    print_endline
      "=== experiment tables (one per paper claim; see EXPERIMENTS.md) ===";
    print_newline ();
    Lcs_experiments.Registry.run_all ~seed:1 ()
  end
