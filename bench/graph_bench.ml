(* Graph-layer macro-benchmarks: the Bigarray CSR storage at capacity.

   Two families — a planar grid and a preferential-attachment graph —
   are streamed into CSR form, then driven through graph-level BFS, a
   flood broadcast (rounds = eccentricity + 1, messages = 2m), a binary
   write / mmap read round trip, and part-wise minimum aggregation
   through the CONGEST simulator at 1 and 4 domains.

   Full mode builds both families at 10^7 nodes. The CSR planes live in
   Bigarrays, so the OCaml heap stays flat while the process holds ~10^8
   edge slots: the report carries [top_heap_words] next to each build to
   make that visible, plus the mmap read time of the ~1 GB binary file —
   O(1) work regardless of size, so milliseconds where the streaming
   parse takes minutes. The aggregation workload keeps its own (smaller)
   instance: a CONGEST protocol at 10^7 nodes would need eccentricity
   many rounds of n activations each, which is not a storage benchmark.

   Allocation words per run are deterministic for a fixed code path,
   which makes them CI-gateable where timings are not:

     graph_bench.exe [--quick] [--out PATH]

   --quick   small instances, one measured iteration (the CI mode);
             gate with bench_diff.exe against bench/baseline_graph.json
   --out     where to write the lcs-bench-graph/1 report
             (default BENCH_graph.json) *)

open Core

(* --- measurement -------------------------------------------------------- *)

type sample = { minor_words : float; promoted_words : float; seconds : float }

(* One measured execution (builds are too big to repeat); [Gc.minor_words]
   is the precise allocator counter, so the numbers stay deterministic. *)
let measure1 f =
  Gc.full_major ();
  let mw0 = Gc.minor_words () in
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  let s1 = Gc.quick_stat () in
  let mw1 = Gc.minor_words () in
  ( result,
    {
      minor_words = mw1 -. mw0;
      promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
      seconds = t1 -. t0;
    } )

let sample_json s =
  Json.Obj
    [
      ("minor_words", Json.Float s.minor_words);
      ("promoted_words", Json.Float s.promoted_words);
      ("seconds_per_run", Json.Float s.seconds);
    ]

(* --- workloads ---------------------------------------------------------- *)

(* Flood broadcast at the graph level: the token starts at [root]; every
   round each holder forwards on all ports once. Rounds = eccentricity + 1,
   messages = 2m, and the frontier sweep is the same flat-queue walk the
   CONGEST cores would drive — per-edge storage work without per-node
   protocol state. Returns (rounds, messages). *)
let broadcast g ~root =
  let n = Graph.n g in
  let has = Bytes.make n '\000' in
  let frontier = Array.make n 0 in
  let next = Array.make n 0 in
  Bytes.unsafe_set has root '\001';
  frontier.(0) <- root;
  let flen = ref 1 in
  let rounds = ref 0 in
  let messages = ref 0 in
  while !flen > 0 do
    incr rounds;
    let nlen = ref 0 in
    for i = 0 to !flen - 1 do
      let v = frontier.(i) in
      Graph.iter_adj g v (fun w _e ->
          incr messages;
          if Bytes.unsafe_get has w = '\000' then begin
            Bytes.unsafe_set has w '\001';
            next.(!nlen) <- w;
            incr nlen
          end)
    done;
    Array.blit next 0 frontier 0 !nlen;
    flen := !nlen
  done;
  (!rounds, !messages)

(* BFS: distances + the max level (the round count a distance protocol
   would need). Returns (levels, reached). *)
let bfs g ~root =
  let dist = Bfs.distances g ~src:root in
  let levels = ref 0 and reached = ref 0 in
  Array.iter
    (fun d ->
      if d >= 0 then begin
        incr reached;
        if d > !levels then levels := d
      end)
    dist;
  (!levels, !reached)

(* --- report assembly ---------------------------------------------------- *)

let schema = "lcs-bench-graph/1"
let bench_rows : (string * Json.t) list ref = ref []
let detail_rows : (string * Json.t) list ref = ref []

let record name sample details =
  Printf.printf "%-24s %14.0f w  %10.2f ms\n%!" name sample.minor_words
    (sample.seconds *. 1e3);
  bench_rows := (name, sample_json sample) :: !bench_rows;
  if details <> [] then detail_rows := (name, Json.Obj details) :: !detail_rows

let top_heap_words () = (Gc.quick_stat ()).Gc.top_heap_words

(* One family end to end: build, BFS, broadcast, binary write + mmap read. *)
let run_family name build =
  let g, s_build = measure1 build in
  record ("build/" ^ name) s_build
    [
      ("n", Json.Int (Graph.n g));
      ("m", Json.Int (Graph.m g));
      ("top_heap_words", Json.Int (top_heap_words ()));
    ];
  let (levels, reached), s_bfs = measure1 (fun () -> bfs g ~root:0) in
  record ("bfs/" ^ name) s_bfs
    [ ("levels", Json.Int levels); ("reached", Json.Int reached) ];
  let (rounds, messages), s_bcast = measure1 (fun () -> broadcast g ~root:0) in
  record ("broadcast/" ^ name) s_bcast
    [ ("rounds", Json.Int rounds); ("messages", Json.Int messages) ];
  let path = Filename.temp_file ("lcs_bench_" ^ name) ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let (), s_write = measure1 (fun () -> Graph_io.write_binary path g) in
      let bytes = (Unix.stat path).Unix.st_size in
      record ("binary/write/" ^ name) s_write [ ("bytes", Json.Int bytes) ];
      let g2, s_read = measure1 (fun () -> Graph_io.read_binary path) in
      if Graph.n g2 <> Graph.n g || Graph.m g2 <> Graph.m g then begin
        Printf.eprintf "FAIL: binary round trip changed %s: n/m mismatch\n" name;
        exit 1
      end;
      record ("binary/read_mmap/" ^ name) s_read
        [
          ("bytes", Json.Int bytes);
          ("read_ms", Json.Float (s_read.seconds *. 1e3));
        ]);
  g

(* Part-wise aggregation through the sharded CONGEST core, 1 vs 4 domains
   (deterministic at any domain count, so both run anywhere). *)
let run_partwise ~rows ~cols =
  let g = Generators.grid ~rows ~cols in
  let tree = Bfs.tree g ~root:0 in
  let sc = (Boost.full (Partition.grid_rows g ~rows ~cols) ~tree).Boost.shortcut in
  let values = Array.init (Graph.n g) (fun v -> (v * 131) mod 65_521) in
  List.iter
    (fun domains ->
      let result, s =
        measure1 (fun () ->
            Sim_aggregate.minimum ~domains (Rng.create 17) sc ~values)
      in
      record (Printf.sprintf "partwise/grid%dx%d/%ddom" rows cols domains) s
        [ ("rounds", Json.Int result.Sim_aggregate.rounds) ])
    [ 1; 4 ]

(* --- entry point -------------------------------------------------------- *)

let () =
  let quick = ref false in
  let out = ref "BENCH_graph.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: path :: rest ->
        out := path;
        parse rest
    | arg :: _ ->
        Printf.eprintf "usage: graph_bench [--quick] [--out PATH]\n";
        Printf.eprintf "unknown argument: %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let grid_rows, grid_cols, pa_n, pw_rows, pw_cols =
    if !quick then (120, 120, 10_000, 28, 28) else (2_500, 4_000, 10_000_000, 160, 160)
  in
  let _grid =
    run_family
      (Printf.sprintf "grid%dx%d" grid_rows grid_cols)
      (fun () -> Generators.grid ~rows:grid_rows ~cols:grid_cols)
  in
  let _pa =
    run_family
      (Printf.sprintf "pa%d" pa_n)
      (fun () -> Generators.preferential_attachment (Rng.create 11) ~n:pa_n ~m0:3)
  in
  run_partwise ~rows:pw_rows ~cols:pw_cols;
  let doc =
    Json.Obj
      [
        ("schema", Json.String schema);
        ("mode", Json.String (if !quick then "quick" else "full"));
        ("unit", Json.String "words/run");
        ("benchmarks", Json.Obj (List.rev !bench_rows));
        ("details", Json.Obj (List.rev !detail_rows));
      ]
  in
  let oc = open_out !out in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" !out
