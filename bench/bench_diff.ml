(* Bench-report differ: compares two BENCH_*.json files produced by
   sim_bench.exe or graph_bench.exe and gates on allocation regressions.

   CI runs this instead of re-implementing the comparison in shell:

     bench_diff.exe BASELINE.json CURRENT.json [--threshold PCT] [--floor W]

   Prints a per-benchmark delta table (minor words, promoted words,
   seconds/run) and exits 1 when any benchmark's minor-heap words grew by
   more than PCT percent (default 25) plus an absolute floor of W words
   (default 4096, so near-zero benches don't trip on constant noise).
   Timings are reported but never gated: wall clock is machine-dependent,
   allocation in quick mode is deterministic. *)

module Json = Lcs_util.Json
module Table = Lcs_util.Table

let read_file path =
  match open_in path with
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
  | exception Sys_error msg ->
      Printf.eprintf "bench_diff: cannot read %s: %s\n" path msg;
      exit 2

(* Both bench executables share the report shape (a "benchmarks" object of
   minor_words/promoted_words/seconds_per_run samples); the schemas of the
   two compared files must match each other. *)
let known_schemas = [ "lcs-bench-simulator/2"; "lcs-bench-graph/1" ]

let parse_report path =
  match Json.of_string (read_file path) with
  | Error e ->
      Printf.eprintf "bench_diff: cannot parse %s: %s\n" path e;
      exit 2
  | Ok doc -> (
      match Json.member "schema" doc with
      | Some (Json.String s) when List.mem s known_schemas -> (doc, s)
      | Some (Json.String s) ->
          Printf.eprintf "bench_diff: %s has unexpected schema %s\n" path s;
          exit 2
      | _ ->
          Printf.eprintf "bench_diff: %s is not a bench report\n" path;
          exit 2)

let number = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let field doc bench key =
  match Json.member "benchmarks" doc with
  | None -> None
  | Some benches -> (
      match Json.member bench benches with
      | None -> None
      | Some sample -> number (Json.member key sample))

let bench_names doc =
  match Json.member "benchmarks" doc with
  | Some (Json.Obj fields) -> List.map fst fields
  | _ -> []

let pct ~base ~cur =
  if base = 0. then if cur = 0. then 0. else infinity
  else (cur -. base) /. base *. 100.

let fmt_pct p =
  if p = infinity then "new" else Printf.sprintf "%+.1f%%" p

let () =
  let threshold = ref 25.0 in
  let floor_words = ref 4096.0 in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        threshold := float_of_string v;
        parse rest
    | "--floor" :: v :: rest ->
        floor_words := float_of_string v;
        parse rest
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
        Printf.eprintf
          "usage: bench_diff BASELINE.json CURRENT.json [--threshold PCT] \
           [--floor WORDS]\n";
        Printf.eprintf "unknown option: %s\n" arg;
        exit 2
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match List.rev !paths with
    | [ b; c ] -> (b, c)
    | _ ->
        Printf.eprintf
          "usage: bench_diff BASELINE.json CURRENT.json [--threshold PCT] \
           [--floor WORDS]\n";
        exit 2
  in
  let baseline, baseline_schema = parse_report baseline_path
  and current, current_schema = parse_report current_path in
  if baseline_schema <> current_schema then begin
    Printf.eprintf "bench_diff: schema mismatch: %s is %s but %s is %s\n"
      baseline_path baseline_schema current_path current_schema;
    exit 2
  end;
  let table =
    Table.create
      ~title:
        (Printf.sprintf "bench diff: %s -> %s (gate: minor words +%.0f%%)"
           baseline_path current_path !threshold)
      [
        ("benchmark", Table.Left);
        ("minor base", Table.Right);
        ("minor cur", Table.Right);
        ("delta", Table.Right);
        ("promoted", Table.Right);
        ("sec/run", Table.Right);
        ("verdict", Table.Right);
      ]
  in
  let regressions = ref [] in
  let names =
    (* Union, baseline order first: a benchmark dropped from the current
       report is as suspicious as a regression and must stay visible. *)
    let cur = bench_names current in
    bench_names baseline
    @ List.filter (fun n -> not (List.mem n (bench_names baseline))) cur
  in
  List.iter
    (fun name ->
      let base = field baseline name "minor_words"
      and cur = field current name "minor_words" in
      match (base, cur) with
      | Some base, Some cur ->
          let regressed = cur > (base *. (1. +. (!threshold /. 100.))) +. !floor_words in
          if regressed then regressions := (name, base, cur) :: !regressions;
          let promoted =
            match field current name "promoted_words" with
            | Some p -> Table.fmt_float p
            | None -> "-"
          and seconds =
            match field current name "seconds_per_run" with
            | Some s -> Printf.sprintf "%.6f" s
            | None -> "-"
          in
          Table.add_row table
            [
              name;
              Table.fmt_float base;
              Table.fmt_float cur;
              fmt_pct (pct ~base ~cur);
              promoted;
              seconds;
              (if regressed then "FAIL" else "ok");
            ]
      | None, Some cur ->
          Table.add_row table
            [ name; "-"; Table.fmt_float cur; "new"; "-"; "-"; "ok" ]
      | Some base, None ->
          Table.add_row table
            [ name; Table.fmt_float base; "-"; "dropped"; "-"; "-"; "MISSING" ];
          regressions := (name, base, nan) :: !regressions
      | None, None -> ())
    names;
  Table.print table;
  match List.rev !regressions with
  | [] -> print_endline "bench_diff: no allocation regressions"
  | rs ->
      List.iter
        (fun (name, base, cur) ->
          if Float.is_nan cur then
            Printf.eprintf "BENCH MISSING: %s is in the baseline but not the \
                            current report\n" name
          else
            Printf.eprintf
              "ALLOCATION REGRESSION: %s grew %.0f -> %.0f minor words \
               (>%.0f%% + %.0f)\n"
              name base cur !threshold !floor_words)
        rs;
      exit 1
