(* Simulator macro-benchmarks: whole protocol runs through the CONGEST
   core, reported as allocation (the quantity the CSR message plane
   exists to kill) plus wall time. Four workloads — graph-flood
   broadcast, synchronous BFS, part-wise aggregation under the enforced
   model, and the Theorem 1.5 distributed construction — each on grid /
   k-tree / lower-bound topologies at two sizes.

   The broadcast workload additionally runs bit-identically on the
   retained reference core (Simulator_ref), and the report carries the
   minor-heap ratio between the two — the headline number CI asserts
   stays >= 3x.

   A domain-scaling section reruns the largest broadcast on the sharded
   core (Simulator_par) at 1/2/4/8 domains, reporting wall-clock speedup
   and asserting the determinism contract (identical states and stats at
   every domain count). The speedup gate — >= 2x at 4 domains — runs
   only when the machine reports >= 4 cores and prints a skip message
   otherwise, so single-core containers stay green.

   Allocation words per run are deterministic for a fixed code path,
   which is what makes them CI-gateable where timings are not:

     sim_bench.exe [--quick] [--out PATH] [--check BASELINE.json]

   --quick     small sizes only, one measured iteration (the CI mode)
   --out       where to write the lcs-bench-simulator/2 report
               (default BENCH_simulator.json)
   --check     compare minor-heap words per benchmark against a previous
               report and exit non-zero on a >25% regression *)

open Core

(* --- workloads --------------------------------------------------------- *)

(* Graph flood: the root's token reaches every node; each node forwards on
   every port exactly once. 2m messages over eccentricity(root)+1 rounds —
   the densest per-round traffic the 1-word model allows. The per-node
   forwarding lists are precomputed (a routing-table pattern), and the
   state is an immediate int, so the measured loop is the simulator core
   plus only the inbox lists its API mandates. States: 0 = waiting,
   1 = has the token, 2 = forwarded and halted. *)
let flood_program g ~root =
  let outboxes =
    Array.init (Graph.n g) (fun v ->
        List.init (Graph.degree g v) (fun p -> (p, 1)))
  in
  {
    Simulator.init = (fun ctx -> if ctx.Simulator.node = root then 1 else 0);
    on_round =
      (fun ctx st ~inbox ->
        let st = if st = 0 && inbox <> [] then 1 else st in
        if st = 1 then (2, outboxes.(ctx.Simulator.node)) else (st, []));
    is_halted = (fun st -> st = 2);
    msg_words = (fun _ -> 1);
  }

(* --- measurement ------------------------------------------------------- *)

type sample = { minor_words : float; promoted_words : float; seconds : float }

let measure ~iters f =
  ignore (f ());
  (* warm-up: buffers reach their high-water marks *)
  Gc.full_major ();
  (* Gc.minor_words () is the precise allocation counter; quick_stat's
     copy only advances at minor-collection boundaries. *)
  let mw0 = Gc.minor_words () in
  let s0 = Gc.quick_stat () in
  let t0 = Sys.time () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  let t1 = Sys.time () in
  let s1 = Gc.quick_stat () in
  let mw1 = Gc.minor_words () in
  let per x0 x1 = (x1 -. x0) /. float_of_int iters in
  {
    minor_words = per mw0 mw1;
    promoted_words = per s0.Gc.promoted_words s1.Gc.promoted_words;
    seconds = per t0 t1;
  }

(* --- the benchmark matrix ---------------------------------------------- *)

(* [prepare] builds the inputs (outside any timer) and returns the run
   thunk; entries are prepared only when selected, so quick mode never
   pays for the large sizes. *)
type entry = { name : string; large : bool; prepare : unit -> unit -> unit }

(* Broadcast entries also expose the same program on the reference core. *)
type bcast = { bname : string; blarge : bool; bprepare : unit -> (unit -> unit) * (unit -> unit) }

let graph_families =
  [
    (* name, large?, graph builder *)
    ("grid16", false, fun () -> Generators.grid ~rows:16 ~cols:16);
    ("grid28", true, fun () -> Generators.grid ~rows:28 ~cols:28);
    ("ktree300", false, fun () -> Generators.k_tree (Rng.create 7) ~k:6 ~n:300);
    ("ktree700", true, fun () -> Generators.k_tree (Rng.create 7) ~k:6 ~n:700);
    ("lbg5_12", false, fun () -> (Lower_bound_graph.create ~delta':5 ~d':12).Lower_bound_graph.graph);
    ("lbg5_30", true, fun () -> (Lower_bound_graph.create ~delta':5 ~d':30).Lower_bound_graph.graph);
  ]

let broadcasts : bcast list =
  List.map
    (fun (name, large, build) ->
      {
        bname = name;
        blarge = large;
        bprepare =
          (fun () ->
            let g = build () in
            let program = flood_program g ~root:0 in
            ( (fun () -> ignore (Simulator.run_outcome g program)),
              fun () -> ignore (Simulator_ref.run_outcome g program) ));
      })
    graph_families

let sync_bfs_entries =
  List.map
    (fun (name, large, build) ->
      {
        name = "sync_bfs/" ^ name;
        large;
        prepare =
          (fun () ->
            let g = build () in
            fun () -> ignore (Sync_bfs.run g ~root:0));
      })
    graph_families

(* Part-wise aggregation wants a full shortcut; each family carries its
   natural partition (grid rows, Voronoi cells, the lower-bound rows). *)
let partwise_entries =
  let make name large shortcut_builder =
    {
      name = "partwise/" ^ name;
      large;
      prepare =
        (fun () ->
          let sc = shortcut_builder () in
          let n = Graph.n (Shortcut.graph sc) in
          let values = Array.init n (fun v -> (v * 131) mod 65_521) in
          fun () -> ignore (Sim_aggregate.minimum (Rng.create 17) sc ~values));
    }
  in
  let boosted g parts =
    let tree = Bfs.tree g ~root:0 in
    (Boost.full parts ~tree).Boost.shortcut
  in
  [
    make "grid16" false (fun () ->
        let g = Generators.grid ~rows:16 ~cols:16 in
        boosted g (Partition.grid_rows g ~rows:16 ~cols:16));
    make "grid28" true (fun () ->
        let g = Generators.grid ~rows:28 ~cols:28 in
        boosted g (Partition.grid_rows g ~rows:28 ~cols:28));
    make "ktree300" false (fun () ->
        let g = Generators.k_tree (Rng.create 7) ~k:6 ~n:300 in
        boosted g (Partition.voronoi g (Rng.create 8) ~parts:10));
    make "ktree700" true (fun () ->
        let g = Generators.k_tree (Rng.create 7) ~k:6 ~n:700 in
        boosted g (Partition.voronoi g (Rng.create 8) ~parts:20));
    make "lbg5_12" false (fun () ->
        let lbg = Lower_bound_graph.create ~delta':5 ~d':12 in
        boosted lbg.Lower_bound_graph.graph lbg.Lower_bound_graph.parts);
    make "lbg5_30" true (fun () ->
        let lbg = Lower_bound_graph.create ~delta':5 ~d':30 in
        boosted lbg.Lower_bound_graph.graph lbg.Lower_bound_graph.parts);
  ]

(* Faulty-run overhead: the same flood under the canned light-loss
   adversary (5% drop, 2% duplication, 5% reorder) with the Reliable ARQ
   wrapped around it — what self-healing transport costs in allocation
   terms next to the clean broadcast rows. A fresh injector per run keeps
   the fault draws identical across iterations, so the row stays
   deterministic and baseline-gateable. *)
let faulty_entries =
  let light_loss =
    {
      Fault.empty with
      Fault.seed = 7;
      default =
        { Fault.reliable_edge with Fault.drop = 0.05; duplicate = 0.02; reorder = 0.05 };
    }
  in
  let make name large rows =
    {
      name = "faulty/" ^ name;
      large;
      prepare =
        (fun () ->
          let g = Generators.grid ~rows ~cols:rows in
          let program = Reliable.wrap (flood_program g ~root:0) in
          fun () ->
            ignore
              (Simulator.run_outcome ~max_rounds:20_000
                 ~faults:(Fault.compile light_loss) g program));
    }
  in
  [ make "grid16" false 16; make "grid28" true 28 ]

(* Traced-run overhead: the same flood broadcast under each observability
   configuration, so the price of watching a run is a row in the gated
   allocation matrix rather than folklore. [untraced] is the in-section
   baseline; [profile] pays the dense Exact counters; [sketch] the
   bounded-memory Space-Saving/quantile pair; [stream] additionally
   writes every event as a line of lcs-trace-stream/1 JSON (to a fixed
   temp path, recreated and removed per run, so the measured allocation
   stays deterministic). *)
let traced_entries =
  let stream_path =
    Filename.concat (Filename.get_temp_dir_name ()) "lcs_sim_bench_trace.jsonl"
  in
  let make name large rows tracer_of =
    {
      name = "traced_overhead/" ^ name;
      large;
      prepare =
        (fun () ->
          let g = Generators.grid ~rows ~cols:rows in
          let program = flood_program g ~root:0 in
          fun () ->
            let tracer, finish = tracer_of g in
            ignore (Simulator.run ?tracer g program);
            finish ());
    }
  in
  let untraced _g = (None, fun () -> ()) in
  let profiled mode g =
    let p = Trace.Profile.create ~mode ~edges:(Graph.m g) () in
    (Some (Trace.Profile.tracer p), fun () -> ignore (Trace.Profile.total_words p))
  in
  let streamed g =
    let sink = Trace.Stream.create stream_path in
    let p = Trace.Profile.create ~edges:(Graph.m g) () in
    ( Some (Trace.tee [ Trace.Profile.tracer p; Trace.Stream.tracer sink ]),
      fun () ->
        Trace.Stream.close sink;
        Sys.remove stream_path )
  in
  [
    make "untraced/grid16" false 16 untraced;
    make "profile/grid16" false 16 (profiled Trace.Profile.Exact);
    make "sketch/grid16" false 16 (profiled (Trace.Profile.Sketch 256));
    make "stream/grid16" false 16 streamed;
    make "untraced/grid28" true 28 untraced;
    make "profile/grid28" true 28 (profiled Trace.Profile.Exact);
    make "sketch/grid28" true 28 (profiled (Trace.Profile.Sketch 256));
    make "stream/grid28" true 28 streamed;
  ]

(* Parallel-profiler overhead on the sharded core: the flood broadcast
   through Simulator_par at 2 domains, with the Par_profile collector
   detached (off — the row the allocation gate protects: every
   instrumentation point must stay behind a [match ... with None -> ()]
   branch, so the off path allocates exactly what it did before the
   profiler existed) and attached (on — reported so the recording cost
   is a number, not folklore; a fresh collector per run keeps the row
   deterministic). [measure]'s Gc counters are per-domain in OCaml 5, so
   these rows account the main domain — shard 0's deliveries plus all
   crew orchestration, which is where the instrumentation branches live. *)
let par_obs_entries =
  let make name pp_of =
    {
      name = "par_obs/" ^ name;
      large = false;
      prepare =
        (fun () ->
          let g = Generators.grid ~rows:16 ~cols:16 in
          let program = flood_program g ~root:0 in
          fun () ->
            ignore
              (Simulator_par.run ~domains:2 ?par_profile:(pp_of ()) g program));
    }
  in
  [
    make "off/grid16" (fun () -> None);
    make "on/grid16" (fun () -> Some (Par_profile.create ()));
  ]

(* The distributed construction is the heaviest simulator client (BFS +
   detection waves); sizes stay modest to keep full mode under a minute. *)
let distributed_entries =
  let make name large partition_builder =
    {
      name = "distributed/" ^ name;
      large;
      prepare =
        (fun () ->
          let parts = partition_builder () in
          fun () -> ignore (Distributed.construct ~seed:3 parts ~root:0));
    }
  in
  [
    make "grid8" false (fun () ->
        let g = Generators.grid ~rows:8 ~cols:8 in
        Partition.grid_rows g ~rows:8 ~cols:8);
    make "grid12" true (fun () ->
        let g = Generators.grid ~rows:12 ~cols:12 in
        Partition.grid_rows g ~rows:12 ~cols:12);
    make "ktree120" false (fun () ->
        let g = Generators.k_tree (Rng.create 7) ~k:4 ~n:120 in
        Partition.voronoi g (Rng.create 8) ~parts:8);
    make "ktree240" true (fun () ->
        let g = Generators.k_tree (Rng.create 7) ~k:4 ~n:240 in
        Partition.voronoi g (Rng.create 8) ~parts:12);
    make "lbg5_12" false (fun () ->
        (Lower_bound_graph.create ~delta':5 ~d':12).Lower_bound_graph.parts);
    make "lbg5_30" true (fun () ->
        (Lower_bound_graph.create ~delta':5 ~d':30).Lower_bound_graph.parts);
  ]

(* --- domain scaling ----------------------------------------------------- *)

(* Wall-clock timing for the scaling curve. [Sys.time] sums CPU seconds
   across all running domains, which would erase any parallel win by
   construction, so this is the one section of the bench on the Unix
   clock — and therefore the one section whose numbers are reported but
   never baseline-gated. *)
let wall ~iters f =
  ignore (f ());
  (* warm-up: buffers and shard scratch reach their high-water marks *)
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) /. float_of_int iters

let scaling_counts = [ 1; 2; 4; 8 ]

(* One curve per workload: rerun at each domain count, hold every
   observable against the 1-domain run (the determinism gate — asserted
   on any machine, since oversubscribed domains must still produce the
   bit-identical answer), then time. Returns the report fragment and the
   4-domain speedup. *)
(* One extra profiled run per domain count feeds the per-domain rows:
   busy/barrier seconds, message counts and the round-level imbalance the
   wall-clock speedup column can't explain on its own. The profiled run
   is separate from the timed ones, so the curve's timings stay those of
   the detached (zero-allocation) path. *)
let curve name run =
  let reference = run ?par_profile:None 1 in
  let run ?par_profile d = run ?par_profile d in
  List.iter
    (fun d ->
      if run d <> reference then begin
        Printf.eprintf
          "DETERMINISM FAILURE: %s at %d domains differs from the serial \
           result\n"
          name d;
        exit 1
      end)
    (List.tl scaling_counts);
  let iters = 3 in
  let serial = wall ~iters (fun () -> run 1) in
  let rows =
    List.map
      (fun d ->
        let s = if d = 1 then serial else wall ~iters (fun () -> run d) in
        let speedup = serial /. Float.max 1e-9 s in
        let pp = Par_profile.create () in
        ignore (run ~par_profile:pp d);
        let dec = Par_profile.decomposition pp in
        Printf.printf
          "scaling/%-16s %d domains  %8.2f ms  speedup %5.2fx  imbalance \
           %4.2f  barrier %5.1f%%\n%!"
          name d (s *. 1e3) speedup
          (Par_profile.imbalance pp)
          (100.
          *. dec.Par_profile.d_barrier_s
          /. Float.max 1e-9 dec.Par_profile.d_wall_s);
        (d, s, speedup, pp))
      scaling_counts
  in
  let json =
    Json.Obj
      (List.map
         (fun (d, s, speedup, pp) ->
           let dec = Par_profile.decomposition pp in
           let totals = Par_profile.totals pp in
           ( string_of_int d,
             Json.Obj
               [
                 ("seconds_per_run", Json.Float s);
                 ("speedup", Json.Float speedup);
                 ("imbalance", Json.Float (Par_profile.imbalance pp));
                 ( "decomposition",
                   Json.Obj
                     [
                       ("wall_s", Json.Float dec.Par_profile.d_wall_s);
                       ("parallel_s", Json.Float dec.Par_profile.d_parallel_s);
                       ("imbalance_s", Json.Float dec.Par_profile.d_imbalance_s);
                       ("barrier_s", Json.Float dec.Par_profile.d_barrier_s);
                       ("serial_s", Json.Float dec.Par_profile.d_serial_s);
                       ("other_s", Json.Float dec.Par_profile.d_other_s);
                     ] );
                 ( "per_domain",
                   Json.List
                     (Array.to_list
                        (Array.mapi
                           (fun shard (t : Par_profile.totals) ->
                             Json.Obj
                               [
                                 ("domain", Json.Int shard);
                                 ( "busy_s",
                                   Json.Float (t.Par_profile.step_s
                                               +. t.Par_profile.deliver_s) );
                                 ("barrier_s", Json.Float t.Par_profile.barrier_s);
                                 ("messages", Json.Int t.Par_profile.messages);
                                 ("words", Json.Int t.Par_profile.words);
                               ])
                           totals)) );
               ] ))
         rows)
  in
  let _, _, speedup4, _ = List.find (fun (d, _, _, _) -> d = 4) rows in
  ((name, json), speedup4)

(* The scaling workloads are deliberately larger than the allocation
   matrix — per-round shard work has to dominate the barrier for a
   multicore machine to have something to chew on. Both run untraced and
   fault-free, the sharded core's fully-parallel fast path, in both
   modes: the quick (CI) mode's gate needs them.

   - broadcast/grid120: a 120x120 grid flood, ~240 rounds of up to ~14k
     node activations each — the gated curve.
   - partwise/grid28: part-wise minimum aggregation over a boosted
     grid-row shortcut, the heaviest per-activation protocol in the
     matrix — reported, not gated (its per-round work is spread over
     fewer, busier nodes).

   Returns the report fragment and a gate thunk, run by the caller only
   after the report is on disk so a gate failure still leaves the
   artifact inspectable. The speedup gate — >= 2x at 4 domains on the
   broadcast — needs real cores and skips, loudly, below four. *)
let run_scaling () =
  let bcast_run =
    let g = Generators.grid ~rows:120 ~cols:120 in
    let program = flood_program g ~root:0 in
    fun ?par_profile d -> Simulator_par.run ?par_profile ~domains:d g program
  in
  let pa_run =
    let g = Generators.grid ~rows:28 ~cols:28 in
    let tree = Bfs.tree g ~root:0 in
    let sc =
      (Boost.full (Partition.grid_rows g ~rows:28 ~cols:28) ~tree).Boost.shortcut
    in
    let values = Array.init (Graph.n g) (fun v -> (v * 131) mod 65_521) in
    (* A fresh rng per run: [setup] consumes it for the delay draws, and
       identical delays across domain counts are part of the contract. *)
    fun ?par_profile d ->
      Sim_aggregate.minimum ?par_profile ~domains:d (Rng.create 17) sc ~values
  in
  let bcast_curve, bcast_speedup4 = curve "broadcast/grid120" bcast_run in
  let pa_curve, _ = curve "partwise/grid28" pa_run in
  let cores = Domain.recommended_domain_count () in
  let json =
    Json.Obj
      [
        ("recommended_domains", Json.Int cores);
        ("determinism", Json.String "identical");
        ("curves", Json.Obj [ bcast_curve; pa_curve ]);
      ]
  in
  let gate () =
    if cores < 4 then
      Printf.printf
        "scaling gate: SKIPPED (machine reports %d core%s; the 4-domain \
         speedup gate needs >= 4)\n%!"
        cores
        (if cores = 1 then "" else "s")
    else if bcast_speedup4 < 2.0 then begin
      Printf.eprintf
        "FAIL: 4-domain broadcast speedup %.2fx is below the 2x target\n"
        bcast_speedup4;
      exit 1
    end
    else
      Printf.printf "scaling gate: %.2fx at 4 domains (>= 2x) ok\n%!"
        bcast_speedup4
  in
  (json, gate)

(* --- report ------------------------------------------------------------ *)

let schema = "lcs-bench-simulator/2"

let sample_json s =
  Json.Obj
    [
      ("minor_words", Json.Float s.minor_words);
      ("promoted_words", Json.Float s.promoted_words);
      ("seconds_per_run", Json.Float s.seconds);
    ]

let run_suite ~quick ~iters =
  let selected l = List.filter (fun e -> (not quick) || not e.large) l in
  let bench_rows = ref [] in
  let ratio_rows = ref [] in
  let agg_csr = ref 0. in
  let agg_ref = ref 0. in
  List.iter
    (fun b ->
      if (not quick) || not b.blarge then begin
        let csr, ref_ = b.bprepare () in
        let s_csr = measure ~iters csr in
        let s_ref = measure ~iters ref_ in
        let ratio = s_ref.minor_words /. Float.max 1. s_csr.minor_words in
        agg_csr := !agg_csr +. s_csr.minor_words;
        agg_ref := !agg_ref +. s_ref.minor_words;
        Printf.printf "broadcast/%-10s  csr %10.0f w  ref %10.0f w  ratio %5.2fx\n%!"
          b.bname s_csr.minor_words s_ref.minor_words ratio;
        bench_rows := ("broadcast/" ^ b.bname, sample_json s_csr) :: !bench_rows;
        ratio_rows :=
          ( b.bname,
            Json.Obj
              [
                ("csr_minor_words", Json.Float s_csr.minor_words);
                ("ref_minor_words", Json.Float s_ref.minor_words);
                ("ratio", Json.Float ratio);
              ] )
          :: !ratio_rows
      end)
    broadcasts;
  let aggregate = !agg_ref /. Float.max 1. !agg_csr in
  Printf.printf "broadcast aggregate ratio (ref/csr minor words): %.2fx\n%!" aggregate;
  ratio_rows :=
    ( "aggregate",
      Json.Obj
        [
          ("csr_minor_words", Json.Float !agg_csr);
          ("ref_minor_words", Json.Float !agg_ref);
          ("ratio", Json.Float aggregate);
        ] )
    :: !ratio_rows;
  List.iter
    (fun e ->
      let f = e.prepare () in
      let s = measure ~iters f in
      Printf.printf "%-20s  %12.0f w  %8.2f ms\n%!" e.name s.minor_words
        (s.seconds *. 1e3);
      bench_rows := (e.name, sample_json s) :: !bench_rows)
    (selected
       (sync_bfs_entries @ partwise_entries @ faulty_entries @ traced_entries
      @ par_obs_entries @ distributed_entries));
  ( Json.Obj
      [
        ("schema", Json.String schema);
        ("mode", Json.String (if quick then "quick" else "full"));
        ("unit", Json.String "words/run");
        ("benchmarks", Json.Obj (List.rev !bench_rows));
        ("broadcast_vs_ref", Json.Obj (List.rev !ratio_rows));
      ],
    List.rev !bench_rows,
    aggregate )

(* --- baseline gate ----------------------------------------------------- *)

(* A regression is a benchmark whose minor-heap words grew more than 25%
   over the checked-in baseline (with a 4096-word absolute floor so
   near-zero benches don't trip on constant noise). *)
let check_against ~baseline_path bench_rows =
  let contents =
    let ic = open_in baseline_path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  match Json.of_string contents with
  | Error e ->
      Printf.eprintf "cannot parse baseline %s: %s\n" baseline_path e;
      exit 2
  | Ok doc ->
      let baseline_minor name =
        match Json.member "benchmarks" doc with
        | Some benches -> (
            match Json.member name benches with
            | Some b -> (
                match Json.member "minor_words" b with
                | Some (Json.Float f) -> Some f
                | Some (Json.Int i) -> Some (float_of_int i)
                | _ -> None)
            | None -> None)
        | None -> None
      in
      let regressions = ref [] in
      List.iter
        (fun (name, sample) ->
          let current =
            match Json.member "minor_words" sample with
            | Some (Json.Float f) -> f
            | _ -> 0.
          in
          match baseline_minor name with
          | None -> Printf.printf "check: %s not in baseline, skipped\n" name
          | Some base ->
              if current > (base *. 1.25) +. 4096. then
                regressions := (name, base, current) :: !regressions
              else
                Printf.printf "check: %-20s %10.0f -> %10.0f w (ok)\n" name base current)
        bench_rows;
      if !regressions <> [] then begin
        List.iter
          (fun (name, base, current) ->
            Printf.eprintf
              "ALLOCATION REGRESSION: %s grew %.0f -> %.0f minor words (>25%%)\n" name
              base current)
          !regressions;
        exit 1
      end

(* --- entry point ------------------------------------------------------- *)

let () =
  let quick = ref false in
  let out = ref "BENCH_simulator.json" in
  let baseline = ref "" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: path :: rest ->
        out := path;
        parse rest
    | "--check" :: path :: rest ->
        baseline := path;
        parse rest
    | arg :: _ ->
        Printf.eprintf "usage: sim_bench [--quick] [--out PATH] [--check BASELINE]\n";
        Printf.eprintf "unknown argument: %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let iters = if !quick then 1 else 3 in
  let doc, bench_rows, aggregate = run_suite ~quick:!quick ~iters in
  let scaling_json, scaling_gate = run_scaling () in
  let doc =
    match doc with
    | Json.Obj fields -> Json.Obj (fields @ [ ("domain_scaling", scaling_json) ])
    | other -> other
  in
  let oc = open_out !out in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" !out;
  (* Gates run only after the report is on disk. *)
  scaling_gate ();
  if !baseline <> "" then begin
    (* Gating mode: the CSR core's headline claim — >= 3x fewer minor-heap
       words than the reference core on the broadcast macro-bench — is
       asserted, not just reported. *)
    if aggregate < 3.0 then begin
      Printf.eprintf
        "FAIL: aggregate broadcast allocation ratio %.2fx is below the 3x target\n"
        aggregate;
      exit 1
    end;
    check_against ~baseline_path:!baseline bench_rows
  end
