(* The whole story inside the enforced CONGEST model: elect a leader,
   build a BFS tree, detect overcongested edges, and aggregate part-wise —
   every stage a real Simulator run at one word per edge per round, with
   its measured cost printed. This is experiment E17 as a walkthrough.

   Run with:  dune exec examples/distributed_pipeline.exe *)

open Core

let () =
  let side = 12 in
  let g = Generators.grid ~rows:side ~cols:side in
  let partition = Partition.grid_rows g ~rows:side ~cols:side in
  let d = Diameter.of_graph g in
  Format.printf "network: %a, diameter %d, %d row parts@." Graph.pp g d
    (Partition.k partition);

  (* Stage 1: leader election (max-id flooding). *)
  let leader, elect = Leader_election.run ~diameter_bound:d g in
  Printf.printf "1. leader election: node %d in %d rounds (%d messages)\n" leader
    elect.Simulator.rounds elect.Simulator.messages;

  (* Stage 2+3: BFS tree from the leader, then the min-hash detection wave
     with delta found by doubling — Theorem 1.5's construction. *)
  let outcome = Distributed.construct ~seed:7 partition ~root:leader in
  Printf.printf "2. BFS tree: height %d in %d rounds\n" outcome.Distributed.height
    outcome.Distributed.bfs_stats.Simulator.rounds;
  Printf.printf "3. detection wave: delta=%d accepted after %d guesses, %d rounds, %d messages\n"
    outcome.Distributed.delta outcome.Distributed.guesses
    outcome.Distributed.wave_rounds outcome.Distributed.wave_messages;
  Printf.printf "   parts covered by the partial shortcut: %d/%d\n"
    outcome.Distributed.result.Construct.selected_count
    (Partition.k partition);

  (* Stage 4: boost to full coverage (the centrally-replayed Lemma 2.8
     bookkeeping, DESIGN.md §6.4) and aggregate under the simulator. *)
  let full = (Boost.full partition ~tree:outcome.Distributed.tree).Boost.shortcut in
  let values = Array.init (Graph.n g) (fun v -> (v * 997) mod 8191) in
  let pa = Sim_aggregate.minimum (Rng.create 9) full ~values in
  Printf.printf "4. part-wise minimum: converged in round %d (%d messages), all answers verified\n"
    pa.Sim_aggregate.completion_round pa.Sim_aggregate.messages;

  let total =
    elect.Simulator.rounds
    + outcome.Distributed.bfs_stats.Simulator.rounds
    + outcome.Distributed.wave_rounds + pa.Sim_aggregate.completion_round
  in
  Printf.printf "total: %d enforced CONGEST rounds on a diameter-%d network (%.1f x D)\n"
    total d
    (float_of_int total /. float_of_int d)
