(* Case (II) of the Theorem 3.1 proof, live: run the construction with a
   congestion threshold it cannot satisfy, watch it fail, and extract a
   machine-verified dense-minor certificate explaining why.

   Run with:  dune exec examples/certificate_hunt.exe *)

open Core

let () =
  let side = 24 in
  let g = Generators.grid ~rows:side ~cols:side in
  let partition = Partition.grid_rows g ~rows:side ~cols:side in
  let tree = Bfs.tree g ~root:0 in

  (* At the paper's parameters (threshold 8·δ·D) the run succeeds — grids
     are planar, so δ(G) < 3 suffices. *)
  let good, delta = Construct.auto partition ~tree in
  Printf.printf "honest run: delta=%d, %d/%d parts covered, %d overcongested edges\n"
    delta good.Construct.selected_count (Partition.k partition)
    good.Construct.overcongested_count;

  (* Now demand the impossible: congestion threshold 3 with block budget 1.
     The run fails, and the blame graph it leaves behind is exactly the
     bipartite B of the proof. *)
  let failed =
    Construct.run ~record_blame:true partition ~tree ~threshold:3 ~block_budget:1
  in
  Printf.printf "forced run: %d/%d parts covered, %d overcongested edges\n"
    failed.Construct.selected_count (Partition.k partition)
    failed.Construct.overcongested_count;

  (* Sample parts with probability 1/(4D) and contract, as in the paper;
     keep the densest minor found. *)
  let cert = Certificate.best_effort ~max_attempts:512 (Rng.create 7) failed in
  Printf.printf
    "certificate: bipartite minor with %d edge-nodes + %d part-nodes, density %.3f\n"
    cert.Certificate.edge_nodes cert.Certificate.part_nodes cert.Certificate.density;
  (match Minor.verify g cert.Certificate.model with
  | Ok () -> print_endline "certificate verifies: branch sets disjoint+connected, every edge witnessed"
  | Error msg -> Printf.printf "BUG: invalid certificate: %s\n" msg);

  (* Every minor's density lower-bounds δ(G); grids are planar so it must
     sit below 3. *)
  Printf.printf "so delta(G) >= %.3f (and < 3 by planarity)\n"
    cert.Certificate.density
