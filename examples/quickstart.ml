(* Quickstart: build a graph, pick parts, construct a Theorem 3.1 shortcut,
   measure its quality, and run a part-wise aggregation through it.

   Run with:  dune exec examples/quickstart.exe *)

open Core

let () =
  (* 1. A 32x32 planar grid: minor density < 3, diameter 62. *)
  let side = 32 in
  let g = Generators.grid ~rows:side ~cols:side in
  Format.printf "graph: %a, diameter %d@." Graph.pp g (Diameter.of_graph g);

  (* 2. Parts: one per grid row — long thin paths, the classic hard case
     for part-wise aggregation. *)
  let partition = Partition.grid_rows g ~rows:side ~cols:side in
  Printf.printf "parts: %d rows, internal diameter %d\n" (Partition.k partition)
    (Partition.internal_diameter partition 0);

  (* 3. A BFS tree and the Theorem 3.1 construction, with delta found by
     doubling search. *)
  let tree = Bfs.tree g ~root:0 in
  let result, delta = Construct.auto partition ~tree in
  Printf.printf "accepted delta = %d (threshold 8*delta*D = %d)\n" delta
    result.Construct.threshold;

  (* 4. Boost the partial shortcut to a full one (Observation 2.7) and
     measure congestion / dilation / block number. *)
  let boosted = Boost.full partition ~tree in
  let report = Quality.measure boosted.Boost.shortcut in
  Format.printf "full shortcut: %a@." Quality.pp_report report;

  (* 5. Use it: every row learns the minimum of its values, under real
     per-edge bandwidth contention. *)
  let rng = Rng.create 1 in
  let values = Array.init (Graph.n g) (fun _ -> Rng.int rng 1_000_000) in
  let out = Aggregate.minimum (Rng.create 2) boosted.Boost.shortcut ~values in
  let ok = out.Aggregate.minima = Aggregate.reference_minima boosted.Boost.shortcut ~values in
  Printf.printf "part-wise minimum: %d rounds, %d messages, correct = %b\n"
    out.Aggregate.rounds out.Aggregate.messages ok;

  (* The schedule bound the measurement sits under. *)
  let bound =
    Aggregate.bound ~congestion:report.Quality.congestion
      ~dilation:(max 1 report.Quality.dilation) ~n:(Graph.n g)
  in
  Printf.printf "schedule bound c + d*log2(n) = %d (measured %d)\n" bound
    out.Aggregate.rounds;
  (* Grid rows have internal diameter D/2, so bare intra-part flooding is
     already Theta(D) here — the dramatic gaps appear when parts are much
     deeper than the graph (see wheel_aggregation.exe and
     lower_bound_tour.exe). *)
  let bare = Aggregate.minimum (Rng.create 2) (Shortcut.empty partition) ~values in
  Printf.printf "without shortcuts: %d rounds (rows are shallow; see the wheel example)\n"
    bare.Aggregate.rounds
