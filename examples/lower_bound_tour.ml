(* A guided tour of the Lemma 3.2 lower-bound topology (Figure 3.2): build
   it, check its promises (diameter, minor density), and watch the quality
   floor hold against our own near-optimal construction.

   Run with:  dune exec examples/lower_bound_tour.exe *)

open Core

let tour delta' d' =
  let lb = Lower_bound_graph.create ~delta' ~d' in
  let g = lb.Lower_bound_graph.graph in
  print_string (Lower_bound_graph.ascii_sketch lb);

  (* Promise 1: diameter at most D'. *)
  let diam = Diameter.of_graph g in
  Printf.printf "diameter: %d (promised <= %d)\n" diam d';

  (* Promise 2: minor density below delta'. The graph's own density is the
     trivial lower bound; a greedy contraction search tightens it. *)
  let greedy = Minor_density.greedy_lower (Rng.create 5) ~restarts:4 g in
  Printf.printf "minor density: >= %.3f (greedy search), promised < %d\n" greedy delta';

  (* Promise 3: the rows admit no good shortcut. Construct the best we
     can — the Theorem 3.1 construction boosted to a full shortcut — and
     compare with the proven floor. *)
  let tree = Bfs.tree g ~root:0 in
  let b = Boost.full lb.Lower_bound_graph.parts ~tree in
  let r = Quality.measure b.Boost.shortcut in
  Printf.printf
    "best shortcut found: quality %d (congestion %d + dilation %d)\n"
    r.Quality.quality r.Quality.congestion r.Quality.dilation;
  Printf.printf "proven floor: %.1f — holds: %b\n\n"
    lb.Lower_bound_graph.quality_lower_bound
    (float_of_int r.Quality.quality >= lb.Lower_bound_graph.quality_lower_bound)

let () =
  List.iter (fun (delta', d') -> tour delta' d') [ (5, 16); (6, 28); (7, 45) ]
