(* The Section 2 motivating example: a wheel graph has diameter 2, but its
   rim — a single connected part — has diameter n-2. Aggregating over the
   rim without help costs Theta(n) rounds; a shortcut through the hub makes
   it O(1).

   Run with:  dune exec examples/wheel_aggregation.exe *)

open Core

let run n =
  let g = Generators.wheel n in
  let rim = List.init (n - 1) (fun i -> i + 1) in
  let partition = Partition.of_parts g [ rim ] in
  let values = Array.init n (fun v -> (v * 7919) mod 104729) in

  (* Without shortcuts: the rim floods along itself. *)
  let bare = Aggregate.minimum (Rng.create 1) (Shortcut.empty partition) ~values in

  (* With Theorem 3.1 shortcuts: the construction hands the rim the hub's
     spokes, collapsing its diameter to 2. *)
  let tree = Bfs.tree g ~root:0 in
  let boosted = Boost.full partition ~tree in
  let fast = Aggregate.minimum (Rng.create 1) boosted.Boost.shortcut ~values in
  let r = Quality.measure boosted.Boost.shortcut in

  assert (bare.Aggregate.minima = fast.Aggregate.minima);
  Printf.printf
    "n=%5d  graph diameter 2, rim diameter %4d | bare PA %4d rounds, shortcut PA %2d rounds (c=%d, d=%d)\n"
    n (Partition.internal_diameter partition 0) bare.Aggregate.rounds
    fast.Aggregate.rounds r.Quality.congestion r.Quality.dilation

let () =
  print_endline "Part-wise aggregation on the wheel (Definition 2.1's cautionary tale):";
  List.iter run [ 64; 128; 256; 512; 1024; 2048 ]
