(* Distributed minimum spanning tree (Corollary 1.6): Borůvka's algorithm
   where every fragment-wide step is a real part-wise aggregation through a
   shortcut, with measured rounds — compared across shortcut providers and
   verified against Kruskal.

   Run with:  dune exec examples/mst_grid.exe *)

open Core

let describe name (result : Mst.result) reference =
  let acc = result.Mst.accounting in
  Printf.printf
    "  %-9s phases=%d  pa_rounds=%4d  max_congestion=%3d  matches_kruskal=%b\n"
    name acc.Boruvka_engine.phases acc.Boruvka_engine.pa_rounds
    acc.Boruvka_engine.max_congestion
    (result.Mst.edges = reference)

let run_instance label weights =
  let reference = Kruskal.mst weights in
  Printf.printf "%s (MST weight %d):\n" label (Weights.total weights reference);
  List.iter
    (fun (name, mode) -> describe name (Mst.boruvka ~seed:11 ~mode weights) reference)
    [
      ("thm31", Boruvka_engine.Thm31);
      ("baseline", Boruvka_engine.Bfs_baseline);
      ("induced", Boruvka_engine.Induced_only);
    ]

let () =
  let side = 16 in
  let g = Generators.grid ~rows:side ~cols:side in

  (* Random distinct weights: Borůvka fragments stay compact blobs. *)
  run_instance
    (Printf.sprintf "grid %dx%d, random weights" side side)
    (Weights.random_distinct (Rng.create 3) g);

  (* Snake weights (ruler levels): the unique MST is a Hamiltonian
     boustrophedon path merged in doubling segments. On a grid the induced
     subgraphs of snake segments are still solid blocks, so all modes stay
     close — the real adversarial case needs chord-free fragments, below. *)
  let n = side * side in
  let id r c = (r * side) + c in
  let snake_vertex i =
    let r = i / side and j = i mod side in
    if r mod 2 = 0 then id r j else id r (side - 1 - j)
  in
  let level i =
    let rec nu x acc = if x land 1 = 1 then acc else nu (x lsr 1) (acc + 1) in
    nu (i + 1) 0
  in
  let snake_edge = Hashtbl.create (2 * n) in
  for i = 0 to n - 2 do
    match Graph.find_edge g (snake_vertex i) (snake_vertex (i + 1)) with
    | Some e -> Hashtbl.replace snake_edge e ((level i * n) + i + 1)
    | None -> assert false
  done;
  let snake =
    Weights.create g (fun e ->
        match Hashtbl.find_opt snake_edge e with
        | Some w -> w
        | None -> (33 * n) + e)
  in
  run_instance (Printf.sprintf "grid %dx%d, snake weights" side side) snake;

  (* The true adversary (Corollary 1.6's reason to exist): ruler weights on
     a wheel rim. Fragments are doubling chord-free arcs — internal
     diameter up to n/2 in a diameter-2 graph. Without shortcuts Borůvka
     pays Θ(n) in total; with Theorem 3.1 shortcuts it stays
     polylogarithmic. *)
  let wn = 256 in
  let wheel = Generators.wheel wn in
  let rim_edge = Hashtbl.create (2 * wn) in
  for i = 1 to wn - 2 do
    match Graph.find_edge wheel i (i + 1) with
    | Some e -> Hashtbl.replace rim_edge e ((level (i - 1) * wn) + i)
    | None -> assert false
  done;
  let wheel_weights =
    Weights.create wheel (fun e ->
        match Hashtbl.find_opt rim_edge e with Some w -> w | None -> (33 * wn) + e)
  in
  run_instance (Printf.sprintf "wheel %d, ruler rim weights" wn) wheel_weights
